"""Synthetic trace generators."""

import numpy as np
import pytest

from repro.simulate.cache.trace import (
    markov_trace,
    sequential_trace,
    working_set_trace,
    zipf_trace,
)


def test_zipf_range_and_length():
    t = zipf_trace(100, 5000, s=1.0, seed=0)
    assert t.shape == (5000,)
    assert t.min() >= 0 and t.max() < 100


def test_zipf_skew_increases_with_s():
    flat = zipf_trace(50, 20000, s=0.0, seed=1)
    skew = zipf_trace(50, 20000, s=2.0, seed=1)
    top_flat = np.mean(flat == 0)
    top_skew = np.mean(skew == 0)
    assert top_skew > 3 * top_flat


def test_zipf_s_zero_is_uniform():
    t = zipf_trace(10, 50000, s=0.0, seed=2)
    counts = np.bincount(t, minlength=10) / t.size
    assert np.allclose(counts, 0.1, atol=0.01)


def test_zipf_reproducible():
    assert np.array_equal(zipf_trace(10, 100, seed=3), zipf_trace(10, 100, seed=3))


def test_zipf_rejects_bad_args():
    with pytest.raises(ValueError):
        zipf_trace(0, 10)
    with pytest.raises(ValueError):
        zipf_trace(10, -1)
    with pytest.raises(ValueError):
        zipf_trace(10, 10, s=-0.5)


def test_sequential_is_cyclic():
    t = sequential_trace(4, 10)
    assert t.tolist() == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]


def test_sequential_rejects_bad_args():
    with pytest.raises(ValueError):
        sequential_trace(0, 5)


def test_working_set_phases_are_disjoint():
    t = working_set_trace([4, 6], 100, seed=0)
    first, second = t[:100], t[100:]
    assert set(first) <= set(range(0, 4))
    assert set(second) <= set(range(4, 10))


def test_working_set_length():
    t = working_set_trace([3, 3, 3], 50, seed=0)
    assert t.shape == (150,)


def test_working_set_empty():
    assert working_set_trace([], 10).shape == (0,)


def test_working_set_rejects_bad_sizes():
    with pytest.raises(ValueError):
        working_set_trace([0], 10)


def test_markov_address_ranges():
    t = markov_trace(4, 16, 5000, p_hot=0.8, seed=0)
    assert t.min() >= 0 and t.max() < 20
    hot = t < 4
    assert 0.6 < np.mean(hot) < 0.95  # near the stationary weight


def test_markov_stationary_weight_tracks_p_hot():
    cooler = markov_trace(4, 16, 8000, p_hot=0.5, seed=1)
    hotter = markov_trace(4, 16, 8000, p_hot=0.95, seed=1)
    assert np.mean(hotter < 4) > np.mean(cooler < 4)


def test_markov_burstiness():
    """High stickiness produces long same-state runs."""
    t = markov_trace(4, 16, 4000, p_hot=0.5, stickiness=0.99, seed=2)
    states = (t < 4).astype(int)
    switches = int(np.sum(np.abs(np.diff(states))))
    assert switches < 400  # far fewer than i.i.d. (~2000 expected)


def test_markov_reproducible():
    a = markov_trace(3, 5, 100, seed=7)
    b = markov_trace(3, 5, 100, seed=7)
    assert np.array_equal(a, b)


def test_markov_validation():
    with pytest.raises(ValueError):
        markov_trace(0, 5, 10)
    with pytest.raises(ValueError):
        markov_trace(3, 5, 10, p_hot=1.0)
    with pytest.raises(ValueError):
        markov_trace(3, 5, 10, stickiness=1.0)
