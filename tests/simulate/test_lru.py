"""LRU stack-distance profiling vs direct simulation (inclusion property)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulate.cache.lru import (
    COLD,
    hits_by_capacity,
    miss_ratio_curve,
    simulate_lru_hits,
    stack_distances,
)
from repro.simulate.cache.trace import sequential_trace, zipf_trace


def test_stack_distances_known_sequence():
    # a b a c b a: the second b sits under {c, a} in the stack (depth 3),
    # and the final a under {b, c} (depth 3).
    trace = [0, 1, 0, 2, 1, 0]
    d = stack_distances(np.array(trace))
    assert d.tolist() == [COLD, COLD, 2, COLD, 3, 3]


def test_first_touches_are_cold():
    d = stack_distances(np.arange(5))
    assert np.all(d == COLD)


def test_repeated_address_distance_one():
    d = stack_distances(np.zeros(4, dtype=int))
    assert d.tolist() == [COLD, 1, 1, 1]


def test_hits_by_capacity_monotone():
    trace = zipf_trace(30, 2000, s=1.0, seed=0)
    hits = hits_by_capacity(stack_distances(trace), 30)
    assert hits[0] == 0
    assert np.all(np.diff(hits) >= 0)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=8), min_size=1, max_size=120))
def test_inclusion_property_vs_direct_simulation(trace):
    """hits_by_capacity must equal a direct LRU simulation at every size."""
    arr = np.array(trace)
    hits = hits_by_capacity(stack_distances(arr), 10)
    for c in range(0, 11):
        assert hits[c] == simulate_lru_hits(arr, c), f"capacity {c}"


def test_scan_has_zero_hits_below_working_set():
    trace = sequential_trace(8, 400)
    hits = hits_by_capacity(stack_distances(trace), 10)
    assert np.all(hits[:8] == 0)
    assert hits[8] == 400 - 8


def test_miss_ratio_curve_bounds_and_monotonicity():
    trace = zipf_trace(40, 3000, s=1.2, seed=1)
    mrc = miss_ratio_curve(trace, 40)
    assert np.all((0 <= mrc) & (mrc <= 1))
    assert np.all(np.diff(mrc) <= 1e-12)
    assert mrc[0] == 1.0


def test_miss_ratio_curve_empty_trace():
    mrc = miss_ratio_curve(np.array([], dtype=int), 5)
    assert np.all(mrc == 1.0)


def test_simulate_rejects_negative_capacity():
    with pytest.raises(ValueError):
        simulate_lru_hits(np.array([1, 2]), -1)


def test_stack_distances_rejects_2d():
    with pytest.raises(ValueError):
        stack_distances(np.zeros((2, 2), dtype=int))


def test_capacity_zero_never_hits():
    trace = zipf_trace(5, 100, seed=0)
    assert simulate_lru_hits(trace, 0) == 0
