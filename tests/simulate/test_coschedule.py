"""Pairwise co-scheduling baseline."""

import numpy as np
import pytest

from repro.simulate.cache.coschedule import (
    coschedule_pairs,
    greedy_pairing,
    pairwise_interference,
)
from repro.simulate.cache.trace import sequential_trace, zipf_trace


def _traces(seed=0):
    rng = np.random.default_rng(seed)
    return [
        zipf_trace(20, 800, s=1.4, seed=rng),
        zipf_trace(20, 800, s=1.1, seed=rng),
        sequential_trace(30, 800),
        zipf_trace(12, 800, s=0.9, seed=rng),
    ]


def test_interference_symmetric_zero_diagonal():
    interference = pairwise_interference(_traces(), capacity=8)
    assert interference.shape == (4, 4)
    assert np.allclose(interference, interference.T)
    assert np.allclose(np.diag(interference), 0.0)


def test_interference_nonnegative():
    """Sharing never creates hits: the other thread's lines only push a
    thread's own lines deeper in the LRU stack."""
    interference = pairwise_interference(_traces(), capacity=8)
    assert np.all(interference >= -1e-9)


def test_greedy_pairing_covers_everyone():
    interference = pairwise_interference(_traces(), capacity=8)
    pairs = greedy_pairing(interference)
    flat = sorted(t for p in pairs for t in p)
    assert flat == [0, 1, 2, 3]


def test_greedy_pairing_prefers_cheap_pairs():
    # Crafted matrix: pairing (0,1) and (2,3) costs 0; anything else costs 10.
    interference = np.full((4, 4), 10.0)
    np.fill_diagonal(interference, 0.0)
    interference[0, 1] = interference[1, 0] = 0.0
    interference[2, 3] = interference[3, 2] = 0.0
    pairs = {tuple(sorted(p)) for p in greedy_pairing(interference)}
    assert pairs == {(0, 1), (2, 3)}


def test_greedy_pairing_validation():
    with pytest.raises(ValueError):
        greedy_pairing(np.zeros((3, 3)))
    with pytest.raises(ValueError):
        greedy_pairing(np.zeros((2, 3)))


def test_coschedule_plan_accounting():
    plan = coschedule_pairs(_traces(), n_cores=2, ways=8)
    assert plan.measurements == 6
    assert len(plan.pairs) == 2
    assert set(plan.cores.tolist()) == {0, 1}
    assert plan.realized_hits > 0


def test_coschedule_requires_two_per_core():
    with pytest.raises(ValueError, match="2 threads per core"):
        coschedule_pairs(_traces(), n_cores=3, ways=8)


def test_optimal_matching_is_best_of_all_pairings():
    traces = _traces(seed=5)
    ways = 8
    plan = coschedule_pairs(traces, n_cores=2, ways=ways, matcher="optimal")
    from repro.simulate.cache.shared import shared_lru_hits

    def value(matching):
        return sum(
            float(shared_lru_hits([traces[i], traces[j]], ways).sum())
            for i, j in matching
        )

    candidates = [
        [(0, 1), (2, 3)],
        [(0, 2), (1, 3)],
        [(0, 3), (1, 2)],
    ]
    assert plan.realized_hits == pytest.approx(max(value(m) for m in candidates))


def test_greedy_can_trail_optimal():
    traces = _traces(seed=5)
    greedy = coschedule_pairs(traces, 2, 8, matcher="greedy")
    optimal = coschedule_pairs(traces, 2, 8, matcher="optimal")
    assert optimal.realized_hits >= greedy.realized_hits


def test_optimal_pairing_crafted_matrix():
    from repro.simulate.cache.coschedule import optimal_pairing

    # Greedy takes the (0,1)=0 edge and is forced into (2,3)=100;
    # the optimum pairs (0,2)+(1,3) for total 4.
    interference = np.array(
        [
            [0.0, 0.0, 2.0, 50.0],
            [0.0, 0.0, 50.0, 2.0],
            [2.0, 50.0, 0.0, 100.0],
            [50.0, 2.0, 100.0, 0.0],
        ]
    )
    pairs = {tuple(sorted(p)) for p in optimal_pairing(interference)}
    assert pairs == {(0, 2), (1, 3)}
    greedy = {tuple(sorted(p)) for p in greedy_pairing(interference)}
    assert greedy == {(0, 1), (2, 3)}


def test_optimal_pairing_validation():
    from repro.simulate.cache.coschedule import optimal_pairing

    with pytest.raises(ValueError):
        optimal_pairing(np.zeros((3, 3)))
    assert optimal_pairing(np.zeros((0, 0))) == []


def test_matcher_name_validation():
    with pytest.raises(ValueError, match="matcher"):
        coschedule_pairs(_traces(), 2, 8, matcher="psychic")
