"""JSON-lines TCP transport: protocol, coalescing, client, error paths."""

import json
import socket

import pytest

from repro.observability import SERVICE_STEPS
from repro.service import (
    AllocationService,
    Client,
    ClusterState,
    InProcessTransport,
    QueryAssignment,
    SubmitThread,
    TcpServer,
)
from repro.utility.functions import LogUtility

CAP = 10.0


def _util(c=1.0):
    return LogUtility(c, 1.0, CAP)


@pytest.fixture()
def server():
    svc = AllocationService(ClusterState(2, CAP))
    srv = TcpServer(svc, port=0)
    srv.start()
    yield srv
    srv.stop()


def test_inprocess_transport_is_one_batch():
    svc = AllocationService(ClusterState(2, CAP))
    bus = InProcessTransport(svc)
    responses = bus.request(*[SubmitThread(f"t{k}", _util()) for k in range(5)])
    assert all(r.ok for r in responses)
    assert svc.counters[SERVICE_STEPS] == 1


def test_tcp_submit_and_status(server):
    with Client(port=server.port) as client:
        resp = client.submit("a", _util(2.0))
        assert resp.ok
        assert resp.data["thread_id"] == "a"
        status = client.status()
        assert status["n_threads"] == 1
        assert status["total_utility"] > 0


def test_tcp_burst_coalesces_into_one_step(server):
    with Client(port=server.port) as client:
        responses = client.request(
            *[SubmitThread(f"t{k}", _util()) for k in range(6)]
        )
    assert all(r.ok for r in responses)
    assert server.service.counters[SERVICE_STEPS] == 1


def test_tcp_full_session(server):
    with Client(port=server.port) as client:
        assert client.submit("x", _util()).ok
        assert client.submit("y", _util()).ok
        assert client.rebalance().ok
        assert client.remove("x").ok
        assert not client.remove("ghost").ok
        assert client.update_capacity(20.0).ok
        snap = client.snapshot()
        assert snap.ok
        assert snap.data["state"]["format"] == "aart-cluster-state/1"
        assert client.status()["n_threads"] == 1


def test_tcp_responses_in_request_order(server):
    with Client(port=server.port) as client:
        responses = client.request(
            SubmitThread("a", _util(), request_id="0"),
            QueryAssignment(request_id="1"),
            SubmitThread("b", _util(), request_id="2"),
        )
    assert [r.request_id for r in responses] == ["0", "1", "2"]


def test_tcp_bad_line_gets_error_response(server):
    with socket.create_connection(("127.0.0.1", server.port), timeout=5.0) as sock:
        sock.sendall(b'{"op": "submit"}\nnot json at all\n')
        fh = sock.makefile("rb")
        first = json.loads(fh.readline())
        second = json.loads(fh.readline())
    assert first["ok"] is False  # submit without thread_id/utility
    assert second["ok"] is False
    assert "bad request line" in second["error"]


def test_tcp_blank_lines_ignored(server):
    with socket.create_connection(("127.0.0.1", server.port), timeout=5.0) as sock:
        sock.sendall(b"\n\n" + json.dumps({"op": "query"}).encode() + b"\n")
        reply = json.loads(sock.makefile("rb").readline())
    assert reply["ok"] is True


def test_tcp_two_sequential_clients(server):
    with Client(port=server.port) as c1:
        c1.submit("from-c1", _util())
    with Client(port=server.port) as c2:
        assert c2.status()["n_threads"] == 1


def test_server_context_manager_stops_cleanly():
    svc = AllocationService(ClusterState(1, CAP))
    with TcpServer(svc, port=0) as srv:
        with Client(port=srv.port) as client:
            assert client.status()["n_servers"] == 1
    # After stop(), new connections must fail.
    with pytest.raises(OSError):
        socket.create_connection(("127.0.0.1", srv.port), timeout=0.5)


def test_empty_request_list_is_noop(server):
    with Client(port=server.port) as client:
        assert client.request() == []
