"""ShardRouter: determinism, minimal disruption, weights, pins, codec."""

import pytest

from repro.service import ShardRouter


def test_routes_are_deterministic_across_instances():
    ids = [f"t{i}" for i in range(200)]
    a = ShardRouter(5)
    b = ShardRouter(5)
    assert [a.route(t) for t in ids] == [b.route(t) for t in ids]


def test_routes_in_range_and_spread_covers_all_shards():
    router = ShardRouter(4)
    ids = [f"thread-{i}" for i in range(400)]
    counts = router.spread(ids)
    assert sum(counts) == len(ids)
    assert all(c > 0 for c in counts), f"some shard got nothing: {counts}"


def test_adding_a_shard_only_remaps_onto_the_new_shard():
    ids = [f"t{i}" for i in range(500)]
    before = ShardRouter(4)
    after = ShardRouter(5)
    moved = [t for t in ids if before.route(t) != after.route(t)]
    # The rendezvous property: every remapped key lands on the new shard.
    assert all(after.route(t) == 4 for t in moved)
    # And only roughly 1/5 of keys move (generous bound: < 2/5).
    assert len(moved) < 2 * len(ids) / 5


def test_removing_a_shard_only_remaps_its_own_keys():
    ids = [f"t{i}" for i in range(500)]
    full = ShardRouter(5)
    shrunk = ShardRouter(4)
    for t in ids:
        if full.route(t) != 4:
            assert shrunk.route(t) == full.route(t)


def test_weights_skew_the_spread():
    ids = [f"t{i}" for i in range(600)]
    counts = ShardRouter(2, weights=[3.0, 1.0]).spread(ids)
    assert counts[0] > 2 * counts[1], counts


def test_pins_override_hashing_and_unpin_restores():
    router = ShardRouter(3)
    hashed = router.route("x")
    target = (hashed + 1) % 3
    router.pin("x", target)
    assert router.route("x") == target
    assert router.pins == {"x": target}
    router.unpin("x")
    assert router.route("x") == hashed
    router.unpin("x")  # idempotent


def test_pin_out_of_range_rejected():
    router = ShardRouter(3)
    with pytest.raises(ValueError):
        router.pin("x", 3)
    with pytest.raises(ValueError):
        ShardRouter(2, pins={"y": -1})


def test_constructor_validation():
    with pytest.raises(ValueError):
        ShardRouter(0)
    with pytest.raises(ValueError):
        ShardRouter(2, weights=[1.0])
    with pytest.raises(ValueError):
        ShardRouter(2, weights=[1.0, 0.0])
    with pytest.raises(ValueError):
        ShardRouter(2, names=["a", "a"])


def test_dict_roundtrip_is_bit_identical_and_routes_identically():
    router = ShardRouter(
        3, weights=[1.0, 2.0, 0.5], names=["us", "eu", "ap"], pins={"t9": 2}
    )
    data = router.to_dict()
    clone = ShardRouter.from_dict(data)
    assert clone.to_dict() == data
    ids = [f"t{i}" for i in range(100)]
    assert [clone.route(t) for t in ids] == [router.route(t) for t in ids]


def test_stable_names_keep_routes_stable_under_renumbering():
    # Routing keys off names (not indices): the same named shards listed
    # in a different order route every thread to the same *name*.
    ids = [f"t{i}" for i in range(200)]
    a = ShardRouter(3, names=["us", "eu", "ap"])
    b = ShardRouter(3, names=["ap", "us", "eu"])
    for t in ids:
        assert a.names[a.route(t)] == b.names[b.route(t)]
