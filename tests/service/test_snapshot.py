"""Snapshot files: atomic write, format marker, warm-restart equality."""

import json

import pytest

from repro.service import (
    AllocationService,
    ClusterState,
    InProcessTransport,
    Rebalance,
    SubmitThread,
    load_snapshot,
    save_snapshot,
    snapshot_from_dict,
)
from repro.utility.functions import LogUtility, SaturatingUtility

CAP = 10.0


def _populated_state():
    state = ClusterState(3, CAP, migration_cost=0.1)
    state.apply_arrival("log", LogUtility(2.0, 1.0, CAP))
    state.apply_arrival("sat", SaturatingUtility(3.0, 2.0, CAP))
    state.apply_departure("log")
    state.apply_arrival("log2", LogUtility(1.0, 0.5, CAP))
    state.apply_rebalance(reason="requested")
    return state


def test_file_roundtrip_bit_identical(tmp_path):
    state = _populated_state()
    path = tmp_path / "snap.json"
    save_snapshot(state, path)
    assert load_snapshot(path).to_dict() == state.to_dict()


def test_snapshot_file_is_valid_json_with_format(tmp_path):
    path = tmp_path / "snap.json"
    save_snapshot(_populated_state(), path)
    data = json.loads(path.read_text())
    assert data["format"] == "aart-snapshot/1"
    assert data["state"]["format"] == "aart-cluster-state/1"


def test_wrong_format_rejected():
    with pytest.raises(ValueError, match="aart-snapshot"):
        snapshot_from_dict({"format": "aart-problem/1"})


def test_no_tmp_file_left_behind(tmp_path):
    path = tmp_path / "snap.json"
    save_snapshot(_populated_state(), path)
    assert [p.name for p in tmp_path.iterdir()] == ["snap.json"]


def test_overwrite_is_atomic_replacement(tmp_path):
    path = tmp_path / "snap.json"
    state = _populated_state()
    save_snapshot(state, path)
    state.apply_arrival("extra", LogUtility(1.0, 1.0, CAP))
    save_snapshot(state, path)
    assert load_snapshot(path).n_threads == state.n_threads


def test_daemon_restart_resumes_with_log_and_version(tmp_path):
    svc = AllocationService(ClusterState(2, CAP))
    bus = InProcessTransport(svc)
    bus.request(*[SubmitThread(f"t{k}", LogUtility(1 + k, 1.0, CAP)) for k in range(4)])
    bus.request(Rebalance())
    path = tmp_path / "snap.json"
    save_snapshot(svc.state, path)

    svc2 = AllocationService(load_snapshot(path))
    assert svc2.state.to_dict() == svc.state.to_dict()
    # The restored daemon keeps the full flight recorder and version line.
    events = [e["event"] for e in svc2.state.log]
    assert events.count("arrival") == 4
    assert events[-1] == "replan"
    resp = InProcessTransport(svc2).request(SubmitThread("after", LogUtility(1, 1, CAP)))
    assert resp[0].ok
    assert svc2.state.version == svc.state.version + 1
