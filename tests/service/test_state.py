"""Versioned cluster state: event log, mutations, dict round-trip."""

import json

import pytest

from repro.service.state import ClusterState
from repro.utility.functions import LogUtility

CAP = 10.0


def _util(c=1.0):
    return LogUtility(c, 1.0, CAP)


def test_fresh_state_is_version_zero():
    state = ClusterState(2, CAP)
    assert state.version == 0
    assert state.log == []
    assert state.n_threads == 0
    assert state.total_utility() == 0.0


def test_every_mutation_bumps_version_and_logs():
    state = ClusterState(2, CAP)
    state.apply_arrival("a", _util())
    state.apply_arrival("b", _util())
    state.apply_departure("a")
    state.apply_capacity(12.0)
    assert state.version == 4
    assert [e["event"] for e in state.log] == [
        "arrival", "arrival", "departure", "capacity",
    ]
    assert all(e["version"] == k + 1 for k, e in enumerate(state.log))


def test_rebalance_logs_replan_and_resets_staleness():
    state = ClusterState(2, CAP)
    for k in range(4):
        state.apply_arrival(f"t{k}", _util(1.0 + k))
    state.mark_step()
    state.mark_step()
    assert state.steps_since_replan == 2
    report = state.apply_rebalance(reason="staleness")
    assert state.steps_since_replan == 0
    entry = state.log[-1]
    assert entry["event"] == "replan"
    assert entry["reason"] == "staleness"
    assert entry["migrations"] == report.migrations


def test_to_dict_roundtrip_bit_identical():
    state = ClusterState(3, CAP, migration_cost=0.25)
    for k in range(5):
        state.apply_arrival(f"t{k}", _util(0.5 + k))
    state.apply_departure("t2")
    state.apply_rebalance(reason="requested")
    state.mark_step()
    d = state.to_dict()
    restored = ClusterState.from_dict(json.loads(json.dumps(d)))
    assert restored.to_dict() == d
    assert restored.version == state.version
    assert restored.steps_since_replan == state.steps_since_replan
    assert restored.thread_ids == state.thread_ids
    assert restored.total_utility() == state.total_utility()


def test_from_dict_rejects_wrong_format():
    with pytest.raises(ValueError, match="aart-cluster-state"):
        ClusterState.from_dict({"format": "nope"})


def test_restored_state_keeps_exact_placements():
    state = ClusterState(2, CAP)
    for k in range(4):
        state.apply_arrival(f"t{k}", _util(1.0 + k))
    a = state.assignment()
    restored = ClusterState.from_dict(state.to_dict())
    b = restored.assignment()
    assert (a.servers == b.servers).all()
    assert (a.allocations == b.allocations).all()
