"""Service introspection: QueryMetrics, health, and the HTTP endpoints."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.problem import ALPHA
from repro.observability import (
    GAUGE_RATIO,
    GAUGE_THREADS,
    QUEUE_DEPTH,
    REQUEST_LATENCY,
    PROMETHEUS_CONTENT_TYPE,
    GapMonitor,
)
from repro.service import (
    AdmissionPolicy,
    AllocationService,
    Client,
    ClusterState,
    InProcessTransport,
    MetricsHttpServer,
    QueryMetrics,
    Rebalance,
    ReplanPolicy,
    SubmitThread,
    TcpServer,
    request_from_dict,
    request_to_dict,
)
from repro.utility.functions import LogUtility

CAP = 10.0


def _util(c=1.0):
    return LogUtility(c, 1.0, CAP)


def _service(**kwargs):
    return AllocationService(
        ClusterState(2, CAP),
        replan_policy=ReplanPolicy(),
        admission_policy=AdmissionPolicy(),
        **kwargs,
    )


def _loaded_service():
    svc = _service()
    bus = InProcessTransport(svc)
    bus.request(*[SubmitThread(f"t{k}", _util(1 + k)) for k in range(6)])
    bus.request(Rebalance())
    return svc, bus


# -- QueryMetrics codec --------------------------------------------------------


def test_query_metrics_roundtrips_through_wire_dict():
    req = QueryMetrics(request_id="m1")
    wire = request_to_dict(req)
    assert wire["op"] == "metrics"
    assert request_from_dict(json.loads(json.dumps(wire))) == req


# -- in-process surfaces -------------------------------------------------------


def test_metrics_snapshot_combines_registry_and_counters():
    svc, _ = _loaded_service()
    names = {i["name"] for i in svc.metrics_snapshot()["instruments"]}
    # registry-side gauges/histograms and service counters, one document
    assert REQUEST_LATENCY in names
    assert GAUGE_THREADS in names and QUEUE_DEPTH in names
    assert "aart_service_steps_total" in names
    assert "aart_service_arrivals_total" in names


def test_gauges_track_cluster_state():
    svc, _ = _loaded_service()
    snap = {
        (i["name"], tuple(sorted(i["labels"].items()))): i
        for i in svc.metrics_snapshot()["instruments"]
    }
    assert snap[(GAUGE_THREADS, ())]["value"] == 6.0
    assert snap[(QUEUE_DEPTH, ())]["value"] == 0.0
    residuals = [i for (n, _), i in snap.items() if n == "aart_server_residual"]
    assert len(residuals) == svc.state.n_servers
    for inst in residuals:
        assert 0.0 <= inst["value"] <= CAP


def test_request_latency_labelled_per_op():
    svc, _ = _loaded_service()
    ops = {
        i["labels"]["op"]
        for i in svc.metrics_snapshot()["instruments"]
        if i["name"] == REQUEST_LATENCY
    }
    assert {"submit", "rebalance"} <= ops


def test_query_metrics_request_returns_snapshot_and_gap():
    svc, bus = _loaded_service()
    (resp,) = bus.request(QueryMetrics(request_id="q"))
    assert resp.ok and resp.request_id == "q"
    assert resp.data["version"] == svc.state.version
    assert resp.data["gap"]["threshold"] == pytest.approx(ALPHA)
    insts = resp.data["metrics"]["instruments"]
    assert all("partials" not in i for i in insts)  # wire form is stripped
    ratio = [i for i in insts if i["name"] == GAUGE_RATIO]
    assert ratio and ratio[0]["value"] >= ALPHA


def test_health_reports_ok_and_certified_ratio():
    svc, _ = _loaded_service()
    h = svc.health()
    assert h["status"] == "ok"
    assert h["n_threads"] == 6
    assert h["last_ratio"] >= ALPHA
    assert h["gap"]["breaches"] == 0


def test_health_degrades_on_gap_breach():
    # A monitor with an impossible threshold flags every certified step.
    svc = _service(gap=GapMonitor(threshold=1.5))
    bus = InProcessTransport(svc)
    bus.request(SubmitThread("t0", _util()))
    bus.request(Rebalance())
    h = svc.health()
    assert h["status"] == "degraded"
    assert h["gap"]["breaches"] >= 1


# -- HTTP endpoints ------------------------------------------------------------


def _get(url):
    with urllib.request.urlopen(url, timeout=5.0) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read().decode()


def test_http_metrics_and_healthz():
    svc, _ = _loaded_service()
    with MetricsHttpServer(svc, port=0) as httpd:
        base = f"http://127.0.0.1:{httpd.port}"
        status, ctype, text = _get(base + "/metrics")
        assert status == 200 and ctype == PROMETHEUS_CONTENT_TYPE
        assert "aart_gap_ratio" in text
        assert "aart_request_latency_seconds_bucket" in text
        assert "aart_service_steps_total" in text

        status, ctype, body = _get(base + "/healthz")
        assert status == 200 and ctype.startswith("application/json")
        doc = json.loads(body)
        assert doc["status"] == "ok" and doc["last_ratio"] >= ALPHA

        with pytest.raises(urllib.error.HTTPError) as err:
            _get(base + "/nope")
        assert err.value.code == 404


def test_http_healthz_returns_503_when_degraded():
    svc = _service(gap=GapMonitor(threshold=1.5))
    bus = InProcessTransport(svc)
    bus.request(SubmitThread("t0", _util()))
    bus.request(Rebalance())
    with MetricsHttpServer(svc, port=0) as httpd:
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(f"http://127.0.0.1:{httpd.port}/healthz")
        assert err.value.code == 503
        assert json.loads(err.value.read().decode())["status"] == "degraded"


def test_http_alongside_tcp_shares_the_service_lock():
    svc = _service()
    with TcpServer(svc, port=0) as srv:
        with MetricsHttpServer(svc, port=0, lock=srv.lock) as httpd:
            with Client(port=srv.port) as client:
                client.submit("t0", _util())
                client.rebalance()
                data = client.metrics()
            assert data["gap"]["ok"]
            status, _, text = _get(f"http://127.0.0.1:{httpd.port}/metrics")
            assert status == 200 and "aart_threads" in text


def test_http_debug_flight_serves_the_ring():
    from repro.observability import FLIGHT_FORMAT, FlightRecorder

    svc = _service(flight=FlightRecorder())
    bus = InProcessTransport(svc)
    bus.request(SubmitThread("t0", _util()))
    with MetricsHttpServer(svc, port=0) as httpd:
        status, ctype, body = _get(f"http://127.0.0.1:{httpd.port}/debug/flight")
    assert status == 200 and ctype.startswith("application/json")
    doc = json.loads(body)
    assert doc["format"] == FLIGHT_FORMAT
    assert any(e["kind"] == "step" for e in doc["events"])


def test_http_debug_flight_404_without_recorder():
    svc = _service()
    with MetricsHttpServer(svc, port=0) as httpd:
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(f"http://127.0.0.1:{httpd.port}/debug/flight")
    assert err.value.code == 404


def test_healthz_degradation_dumps_the_flight_ring_once(tmp_path):
    from repro.observability import FlightRecorder, load_flight

    svc = _service(gap=GapMonitor(threshold=1.5), flight=FlightRecorder())
    bus = InProcessTransport(svc)
    bus.request(SubmitThread("t0", _util()))
    bus.request(Rebalance())
    dump = tmp_path / "flight.json"
    with MetricsHttpServer(svc, port=0, flight_dump_path=str(dump)) as httpd:
        for _ in range(2):  # second probe must not re-dump
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"http://127.0.0.1:{httpd.port}/healthz")
            assert err.value.code == 503
        doc = load_flight(str(dump))
        assert any(e["kind"] == "gap_alert" for e in doc["events"])
        marker = doc["events"][-1]["seq"]
        svc.flight.record("step", step=99)
        with pytest.raises(urllib.error.HTTPError):
            _get(f"http://127.0.0.1:{httpd.port}/healthz")
        # the dump on disk still ends at the first breach's marker
        assert load_flight(str(dump))["events"][-1]["seq"] == marker


def test_client_metrics_over_tcp():
    svc = _service()
    with TcpServer(svc, port=0) as srv:
        with Client(port=srv.port) as client:
            client.submit("a", _util())
            data = client.metrics()
    names = {i["name"] for i in data["metrics"]["instruments"]}
    assert REQUEST_LATENCY in names
    assert data["version"] == svc.state.version
