"""Replan triggers and admission refusals."""

import pytest

from repro.core.problem import ALPHA
from repro.service.policy import AdmissionPolicy, ReplanPolicy


def test_default_drift_threshold_is_alpha():
    assert ReplanPolicy().drift_threshold == pytest.approx(ALPHA)


def test_drift_fires_below_threshold():
    pol = ReplanPolicy(drift_threshold=0.9, max_staleness=None)
    assert pol.should_replan(utility=0.8, bound=1.0, steps_since_replan=0) == "drift"
    assert pol.should_replan(utility=0.95, bound=1.0, steps_since_replan=0) is None


def test_drift_exact_threshold_does_not_fire():
    pol = ReplanPolicy(drift_threshold=0.9, max_staleness=None)
    assert pol.should_replan(utility=0.9, bound=1.0, steps_since_replan=10**6) is None


def test_staleness_fires_after_max_steps():
    pol = ReplanPolicy(drift_threshold=0.0, max_staleness=3)
    assert pol.should_replan(utility=1.0, bound=1.0, steps_since_replan=2) is None
    assert pol.should_replan(utility=1.0, bound=1.0, steps_since_replan=3) == "staleness"


def test_drift_takes_precedence_over_staleness():
    pol = ReplanPolicy(drift_threshold=0.9, max_staleness=1)
    assert pol.should_replan(utility=0.1, bound=1.0, steps_since_replan=5) == "drift"


def test_empty_cluster_never_drifts():
    pol = ReplanPolicy(drift_threshold=1.0, max_staleness=None)
    assert pol.should_replan(utility=0.0, bound=0.0, steps_since_replan=0) is None


@pytest.mark.parametrize(
    "kwargs",
    [
        {"drift_threshold": -0.1},
        {"drift_threshold": 1.5},
        {"max_staleness": 0},
        {"migration_budget": -1},
    ],
)
def test_replan_policy_validation(kwargs):
    with pytest.raises(ValueError):
        ReplanPolicy(**kwargs)


def test_admission_queue_bound():
    pol = AdmissionPolicy(max_queue=2)
    assert pol.refuse_enqueue(0) is None
    assert pol.refuse_enqueue(1) is None
    assert "queue full" in pol.refuse_enqueue(2)


def test_admission_marginal_floor():
    pol = AdmissionPolicy(min_marginal_utility=0.5)
    assert pol.refuse_submit(0.6) is None
    assert "below floor" in pol.refuse_submit(0.4)


def test_admission_zero_floor_accepts_anything():
    assert AdmissionPolicy().refuse_submit(0.0) is None


@pytest.mark.parametrize(
    "kwargs", [{"min_marginal_utility": -1.0}, {"max_queue": 0}]
)
def test_admission_policy_validation(kwargs):
    with pytest.raises(ValueError):
        AdmissionPolicy(**kwargs)
