"""Distributed request tracing: one stitched tree per client call.

A traced client call against a 2-shard fleet over real TCP must come
back as a single span tree rooted at ``client.request``, with the
coordinator's route/dispatch/certify spans in the middle and each
shard's ``solve.<name>`` skeleton at the leaves — ferried back through
``Response.trace`` and grafted by :func:`stamp_remote`.
"""

import json
import threading
from pathlib import Path

import pytest

from repro.observability import (
    REQUEST_PHASE_SECONDS,
    SHARD_LABEL,
    GapMonitor,
    MemorySink,
    Tracer,
    chrome_trace,
)
from repro.service import (
    AllocationService,
    Client,
    ClusterState,
    FleetCoordinator,
    InProcessTransport,
    QueryFlight,
    Rebalance,
    ReplanPolicy,
    SubmitThread,
    TcpServer,
    TraceContext,
    request_from_dict,
    request_to_dict,
)
from repro.utility.functions import LogUtility

GOLDEN = Path(__file__).parent / "golden"
CAP = 10.0


def _util(c=1.0):
    return LogUtility(c, 1.0, CAP)


def _eager_shard():
    """A shard that full-replans every step, so traces carry solve spans."""
    return AllocationService(
        ClusterState(2, CAP), replan_policy=ReplanPolicy(max_staleness=1)
    )


def _shard_ids(fleet, n_shards=2, universe=40):
    """One thread id routed to each shard, probed through the router."""
    ids = {}
    for i in range(universe):
        ids.setdefault(fleet.router.route(f"t{i}"), f"t{i}")
        if len(ids) == n_shards:
            return ids
    raise AssertionError("router never hit every shard")


def _tree_names(nodes):
    return [(n["name"], _tree_names(n["children"])) for n in nodes]


def _skeleton_subtree(skel, name):
    """Depth-first search for ``name`` in a nested skeleton dict."""
    if name in skel:
        return skel[name]
    for node in skel.values():
        found = _skeleton_subtree(node.get("children", {}), name)
        if found is not None:
            return found
    return None


# -- trace context on the wire -------------------------------------------------


def test_trace_context_roundtrips_through_request_codec():
    ctx = TraceContext("abc123", parent_span_id=7)
    req = SubmitThread("t0", _util(), request_id="r1", trace=ctx)
    wire = json.loads(json.dumps(request_to_dict(req)))
    assert wire["trace"] == {"trace_id": "abc123", "parent_span_id": 7}
    back = request_from_dict(wire)
    assert back.trace == ctx
    assert back.request_id == "r1" and back.thread_id == "t0"
    # a parentless context omits the id on the wire and parses back
    slim = request_to_dict(SubmitThread("t0", _util(), trace=TraceContext("x")))
    assert slim["trace"] == {"trace_id": "x"}
    assert request_from_dict(slim).trace == TraceContext("x")
    # absent trace stays absent
    bare = request_to_dict(SubmitThread("t0", _util()))
    assert "trace" not in bare


# -- in-process stitching ------------------------------------------------------


def test_in_process_transport_stitches_one_tree():
    svc = _eager_shard()
    tracer = Tracer()
    bus = InProcessTransport(svc, tracer=tracer)
    resps = bus.request(SubmitThread("t0", _util(), request_id="r0"))
    assert resps[0].ok
    roots = tracer.tree()
    assert [r["name"] for r in roots] == ["client.request"]
    names = {s["name"] for s in tracer.snapshot()["spans"]}
    assert {"service.step", "solve.alg2", "phase.queue_wait",
            "phase.serialize"} <= names
    # responses come back stripped for the caller; the spans now live in
    # the client tracer (ferried once, merged once)
    assert resps[0].trace is None or resps[0].trace["spans"]


def test_untraced_path_carries_no_trace_payload():
    svc = _eager_shard()
    bus = InProcessTransport(svc)
    (resp,) = bus.request(SubmitThread("t0", _util()))
    assert resp.ok and resp.trace is None


# -- fleet over real TCP -------------------------------------------------------


@pytest.fixture()
def traced_fleet():
    shards = [_eager_shard() for _ in range(2)]
    fleet = FleetCoordinator(shards)
    server = TcpServer(fleet, port=0, coalesce_window_s=0.05)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    tracer = Tracer(trace_id="stitch-golden")
    try:
        yield fleet, server, tracer
    finally:
        server.stop()


def _traced_submit_burst(fleet, server, tracer):
    ids = _shard_ids(fleet)
    with Client(port=server.port, tracer=tracer) as client:
        resps = client.request(
            SubmitThread(ids[0], _util(1.0), request_id="r0"),
            SubmitThread(ids[1], _util(2.0), request_id="r1"),
        )
    assert all(r.ok for r in resps)
    return resps


def test_fleet_tcp_submit_yields_one_stitched_tree(traced_fleet):
    fleet, server, tracer = traced_fleet
    _traced_submit_burst(fleet, server, tracer)

    roots = tracer.tree()
    assert len(roots) == 1 and roots[0]["name"] == "client.request"

    # the coordinator middle layer is present, once
    names = [s["name"] for s in tracer.snapshot()["spans"]]
    assert names.count("fleet.process") == 1
    assert names.count("fleet.route") == 1
    assert names.count("fleet.certify") == 1
    # one fleet.shard subtree per shard, each with its own solve skeleton
    shard_spans = [s for s in tracer.snapshot()["spans"] if s["name"] == "fleet.shard"]
    assert sorted(s["attrs"]["shard"] for s in shard_spans) == [0, 1]
    assert names.count("solve.alg2") == 2
    # per-request phases are attributed to their request ids
    waits = [s for s in tracer.snapshot()["spans"] if s["name"] == "phase.queue_wait"]
    assert sorted(w["attrs"]["request_id"] for w in waits) == ["r0", "r1"]


def test_fleet_leaf_solve_spans_match_per_shard_skeletons(traced_fleet):
    fleet, server, tracer = traced_fleet
    _traced_submit_burst(fleet, server, tracer)

    # reference: the same eager shard traced directly, no fleet in sight
    reference = Tracer()
    bus = InProcessTransport(_eager_shard(), tracer=reference)
    assert bus.request(SubmitThread("t0", _util()))[0].ok

    stitched_solve = _skeleton_subtree(tracer.skeleton(), "solve.alg2")
    reference_solve = _skeleton_subtree(reference.skeleton(), "solve.alg2")
    assert stitched_solve is not None and reference_solve is not None
    assert stitched_solve["count"] == 2  # one full solve per shard
    assert set(stitched_solve["children"]) == set(reference_solve["children"])


def _normalized_chrome(doc):
    """Chrome export with wall-clock scrubbed: structure, names, ids only."""
    events = []
    for event in doc["traceEvents"]:
        event = dict(event)
        if event["ph"] == "X":
            event["ts"] = 0
            event["dur"] = 0
        events.append(event)
    events.sort(key=lambda e: (e["pid"], e["ph"] != "M", e["args"].get("span_id", -1)))
    return {"traceEvents": events, "displayTimeUnit": doc["displayTimeUnit"]}


def test_fleet_chrome_trace_matches_golden(traced_fleet):
    fleet, server, tracer = traced_fleet
    _traced_submit_burst(fleet, server, tracer)
    doc = _normalized_chrome(chrome_trace(tracer.snapshot()))
    golden = json.loads((GOLDEN / "fleet_stitch.chrome.json").read_text())
    assert doc == golden


# -- auto request ids ----------------------------------------------------------


def test_client_auto_assigns_monotonic_request_ids():
    svc = _eager_shard()
    with TcpServer(svc, port=0) as server:
        with Client(port=server.port) as client:
            r1 = client.submit("a", _util())
            r2 = client.submit("b", _util())
            explicit = client.request(SubmitThread("c", _util(), request_id="mine"))[0]
            r3 = client.remove("a")
    prefix = r1.request_id.rsplit("-", 1)[0]
    assert prefix.startswith("c")
    assert r1.request_id == f"{prefix}-1"
    assert r2.request_id == f"{prefix}-2"
    assert explicit.request_id == "mine"  # caller-chosen ids are untouched
    assert r3.request_id == f"{prefix}-3"  # counter keeps going


def test_two_clients_get_distinct_id_prefixes():
    svc = _eager_shard()
    with TcpServer(svc, port=0) as server:
        with Client(port=server.port) as c1, Client(port=server.port) as c2:
            a = c1.submit("a", _util())
            b = c2.submit("b", _util())
    assert a.request_id.rsplit("-", 1)[0] != b.request_id.rsplit("-", 1)[0]


# -- phase histograms ----------------------------------------------------------


def test_phase_histograms_cover_shard_and_coordinator_phases(traced_fleet):
    fleet, server, tracer = traced_fleet
    _traced_submit_burst(fleet, server, tracer)
    phases = {}
    for inst in fleet.metrics_snapshot()["instruments"]:
        if inst["name"] != REQUEST_PHASE_SECONDS:
            continue
        phases[(inst["labels"]["phase"], inst["labels"].get(SHARD_LABEL))] = inst
    # coordinator-level phases carry no shard label except dispatch
    assert ("route", None) in phases
    assert ("certify", None) in phases
    assert ("coalesce_wait", None) in phases
    assert ("dispatch", "0") in phases and ("dispatch", "1") in phases
    # shard-local phases come back shard-labelled through aggregation
    assert ("queue_wait", "0") in phases and ("queue_wait", "1") in phases
    assert ("solve", "0") in phases and ("solve", "1") in phases
    text = fleet.metrics_text()
    assert "aart_request_phase_seconds_bucket" in text


def test_phase_histograms_populate_without_tracing():
    svc = _eager_shard()
    with TcpServer(svc, port=0) as server:
        with Client(port=server.port) as client:
            assert client.submit("a", _util()).ok
    names = {i["name"] for i in svc.metrics_snapshot()["instruments"]}
    assert REQUEST_PHASE_SECONDS in names


# -- fleet gap alerts carry the shard label ------------------------------------


def test_fleet_gap_alert_points_at_the_binding_shard():
    sink = MemorySink()
    shards = [_eager_shard() for _ in range(2)]
    fleet = FleetCoordinator(
        shards, gap=GapMonitor(threshold=1.5, sink=sink)  # impossible bar
    )
    ids = _shard_ids(fleet)
    resps = fleet.process(
        [SubmitThread(ids[0], _util(1.0)), SubmitThread(ids[1], _util(2.0))]
    )
    assert all(r.ok for r in resps)
    alerts = [e for e in sink.events if e["type"] == "gap_alert"]
    assert alerts, "threshold 1.5 must breach"
    cert = fleet.certificate()
    for alert in alerts:
        assert alert["fleet"] is True
        assert alert[SHARD_LABEL] == str(cert.min_shard)


# -- flight over the protocol --------------------------------------------------


def test_query_flight_fans_out_across_the_fleet():
    from repro.observability import FLIGHT_FORMAT, FlightRecorder

    shards = [
        AllocationService(ClusterState(2, CAP), flight=FlightRecorder())
        for _ in range(2)
    ]
    fleet = FleetCoordinator(shards, flight=FlightRecorder())
    ids = _shard_ids(fleet)
    fleet.process([SubmitThread(ids[0], _util()), SubmitThread(ids[1], _util(2.0))])
    fleet.process([Rebalance()])
    (resp,) = fleet.process([QueryFlight(request_id="f1")])
    assert resp.ok and resp.request_id == "f1"
    doc = resp.data["flight"]
    assert doc["format"] == FLIGHT_FORMAT
    assert any(e["kind"] == "fleet_step" for e in doc["events"])
    assert len(resp.data["shards"]) == 2
    for shard_doc in resp.data["shards"]:
        assert shard_doc["format"] == FLIGHT_FORMAT


def test_query_flight_without_recorder_is_a_clean_refusal():
    svc = _eager_shard()
    bus = InProcessTransport(svc)
    (resp,) = bus.request(QueryFlight())
    assert not resp.ok and "flight" in resp.error


def test_client_flight_over_tcp():
    from repro.observability import FLIGHT_FORMAT, FlightRecorder

    svc = AllocationService(ClusterState(2, CAP), flight=FlightRecorder())
    with TcpServer(svc, port=0) as server:
        with Client(port=server.port) as client:
            client.submit("a", _util())
            doc = client.flight()
    assert doc["format"] == FLIGHT_FORMAT
    assert any(e["kind"] == "step" for e in doc["events"])
