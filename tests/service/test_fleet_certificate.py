"""The certificate composition lemma, unit-tested and property-tested.

The property test generates a workload and an arbitrary split across K
in-process shards, lets every shard re-solve (so each is α-certified),
and checks the composed fleet certificate against ground truth:

* ``utility`` equals the true summed utility of the shards (F = Σ F_k);
* the composed floor ``(min_k r_k)·F̂`` never exceeds that true utility
  (the lemma's lower bound is *valid*);
* the floor is at least ``α·F̂`` (the lemma's lower bound is *strong*:
  every shard certifies at α, so the fleet does);
* ``F ≤ F̂`` (the summed bound stays an upper bound on the
  partition-respecting optimum, hence on the realized utility).
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import ALPHA
from repro.service import (
    AllocationService,
    ClusterState,
    FleetCoordinator,
    FleetPolicy,
    Rebalance,
    ShardCertificate,
    ShardRouter,
    SubmitThread,
    compose_certificates,
)

from tests.conftest import CAP, utility_lists

TOL = 1e-9


# -- unit: the lemma's edge cases ---------------------------------------------


def test_empty_composition_is_trivially_certified():
    cert = compose_certificates([])
    assert cert.complete and cert.ratio == 1.0 and cert.floor == 0.0
    assert cert.holds()


def test_empty_shards_do_not_constrain_the_minimum():
    cert = compose_certificates(
        [
            ShardCertificate(shard=0, utility=9.0, bound=10.0, n_threads=3, version=3),
            ShardCertificate(shard=1, utility=0.0, bound=None, n_threads=0, version=0),
        ]
    )
    assert cert.complete
    assert cert.min_shard_ratio == pytest.approx(0.9)
    assert cert.max_shard_ratio == 1.0


def test_uncertified_nonempty_shard_marks_composition_incomplete():
    cert = compose_certificates(
        [
            ShardCertificate(shard=0, utility=5.0, bound=6.0, n_threads=2, version=2),
            ShardCertificate(shard=1, utility=3.0, bound=None, n_threads=1, version=1),
        ]
    )
    assert not cert.complete
    assert cert.ratio is None and cert.floor is None
    assert not cert.holds()
    assert math.isnan(cert.min_shard_ratio)
    # Realized utility still aggregates (for dashboards), bound excludes
    # the uncertified shard.
    assert cert.utility == pytest.approx(8.0)
    assert cert.bound == pytest.approx(6.0)


def test_mediant_inequality_on_fixed_numbers():
    cert = compose_certificates(
        [
            ShardCertificate(shard=0, utility=8.5, bound=10.0, n_threads=4, version=4),
            ShardCertificate(shard=1, utility=19.0, bound=20.0, n_threads=7, version=7),
        ]
    )
    assert cert.min_shard_ratio == pytest.approx(0.85)
    assert cert.max_shard_ratio == pytest.approx(0.95)
    assert cert.min_shard_ratio - TOL <= cert.ratio <= cert.max_shard_ratio + TOL
    assert cert.floor <= cert.utility + TOL
    assert cert.holds(threshold=0.85)
    assert not cert.holds(threshold=0.86)


# -- property: composed certificate vs ground truth ---------------------------


@settings(max_examples=25, deadline=None)
@given(
    fns=utility_lists(min_size=2, max_size=10),
    data=st.data(),
)
def test_fleet_floor_bounds_true_utility_for_any_split(fns, data):
    n_shards = data.draw(st.integers(min_value=2, max_value=3), label="n_shards")
    split = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=n_shards - 1),
            min_size=len(fns),
            max_size=len(fns),
        ),
        label="split",
    )
    router = ShardRouter(n_shards, pins={f"t{i}": s for i, s in enumerate(split)})
    fleet = FleetCoordinator(
        [AllocationService(ClusterState(2, CAP)) for _ in range(n_shards)],
        router=router,
        policy=FleetPolicy(rebalance_interval=None, imbalance_threshold=None),
    )
    resps = fleet.process(
        [SubmitThread(f"t{i}", fn) for i, fn in enumerate(fns)]
    )
    assert all(r.ok for r in resps)
    # Force every shard to its α-certified optimum (Theorem V.8/V.16).
    fleet.handle(Rebalance())
    cert = fleet.certificate()
    assert cert.complete

    # Ground truth: the true summed utility, recomputed from placements.
    statuses = fleet.status()["shards"]
    true_utility = sum(s["total_utility"] for s in statuses)
    scale = max(true_utility, 1.0)

    # F aggregates exactly.
    assert cert.utility == pytest.approx(true_utility)
    # Lemma, validity: the composed floor never exceeds the true utility.
    assert cert.floor <= true_utility + TOL * scale
    # Lemma, strength: every shard re-solved, so the floor is ≥ α·F̂.
    assert cert.holds(), (
        f"min shard ratio {cert.min_shard_ratio} < α={ALPHA}"
    )
    assert cert.floor >= ALPHA * cert.bound - TOL * scale
    # Lemma V.3 per shard: F̂ stays an upper bound on what the partition
    # can realize.
    assert cert.utility <= cert.bound + TOL * scale
    # Mediant sandwich.
    assert cert.min_shard_ratio - TOL <= cert.ratio <= cert.max_shard_ratio + TOL
