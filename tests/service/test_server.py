"""AllocationService: coalescing, admission, policy replans, snapshots.

Covers the PR's acceptance criteria end to end: N batched arrivals are
one incremental step (asserted via the merged ``SolveContext`` counters),
a policy-triggered rebalance restores the certified ratio to ≥ α, and a
snapshot/restore round trip is bit-identical.
"""

import json

import pytest

from repro.core.problem import ALPHA
from repro.observability import (
    SERVICE_ADMISSION_REJECTS,
    SERVICE_ARRIVALS,
    SERVICE_DEPARTURES,
    SERVICE_MIGRATIONS,
    SERVICE_REPLANS,
    SERVICE_REQUESTS,
    SERVICE_STEPS,
    MemorySink,
)
from repro.service import (
    AdmissionPolicy,
    AllocationService,
    ClusterState,
    InProcessTransport,
    QueryAssignment,
    Rebalance,
    RemoveThread,
    ReplanPolicy,
    Snapshot,
    SubmitThread,
    UpdateCapacity,
)
from repro.utility.functions import LogUtility, ZeroUtility

CAP = 10.0


def _util(c=1.0):
    return LogUtility(c, 1.0, CAP)


def _service(n_servers=2, replan=None, admission=None, **kwargs):
    return AllocationService(
        ClusterState(n_servers, CAP),
        replan_policy=replan or ReplanPolicy(),
        admission_policy=admission or AdmissionPolicy(),
        **kwargs,
    )


# -- batching / coalescing ----------------------------------------------------


def test_batched_arrivals_are_one_step():
    svc = _service()
    bus = InProcessTransport(svc)
    responses = bus.request(*[SubmitThread(f"t{k}", _util(1 + k)) for k in range(8)])
    assert all(r.ok for r in responses)
    assert svc.counters[SERVICE_STEPS] == 1
    assert svc.counters[SERVICE_ARRIVALS] == 8
    assert svc.state.n_threads == 8


def test_one_step_per_batch():
    svc = _service()
    bus = InProcessTransport(svc)
    for b in range(3):
        bus.request(*[SubmitThread(f"b{b}t{k}", _util()) for k in range(4)])
    assert svc.counters[SERVICE_STEPS] == 3
    assert svc.counters[SERVICE_ARRIVALS] == 12


def test_empty_queue_step_is_not_counted():
    svc = _service()
    assert svc.step() == []
    assert svc.counters[SERVICE_STEPS] == 0
    # A read-only batch does not step either.
    InProcessTransport(svc).request(QueryAssignment())
    assert svc.counters[SERVICE_STEPS] == 0


def test_departures_processed_before_arrivals():
    svc = _service(n_servers=1)
    bus = InProcessTransport(svc)
    bus.request(SubmitThread("old", _util()))
    # In one batch: the departure must free the server before the arrival lands.
    responses = bus.request(RemoveThread("old"), SubmitThread("new", _util(2.0)))
    assert all(r.ok for r in responses)
    assert svc.state.thread_ids == ["new"]
    assert svc.counters[SERVICE_DEPARTURES] == 1


def test_mixed_batch_reads_see_post_step_state():
    svc = _service()
    bus = InProcessTransport(svc)
    responses = bus.request(SubmitThread("a", _util()), QueryAssignment())
    assert responses[1].data["n_threads"] == 1


def test_responses_align_with_requests():
    svc = _service()
    bus = InProcessTransport(svc)
    responses = bus.request(
        SubmitThread("a", _util(), request_id="r0"),
        QueryAssignment(request_id="r1"),
        SubmitThread("b", _util(), request_id="r2"),
    )
    assert [r.request_id for r in responses] == ["r0", "r1", "r2"]
    assert [r.op for r in responses] == ["submit", "query", "submit"]


def test_duplicate_submit_in_one_batch_rejected():
    svc = _service()
    responses = InProcessTransport(svc).request(
        SubmitThread("dup", _util()), SubmitThread("dup", _util())
    )
    assert responses[0].ok
    assert not responses[1].ok
    assert "already scheduled" in responses[1].error


def test_update_capacity_roundtrip():
    svc = _service()
    bus = InProcessTransport(svc)
    bus.request(SubmitThread("a", _util()))
    assert bus.request(UpdateCapacity(20.0))[0].ok
    assert svc.state.capacity == 20.0
    # Shrinking below a resident's utility cap must be refused.
    resp = bus.request(UpdateCapacity(CAP / 2))[0]
    assert not resp.ok
    assert svc.state.capacity == 20.0


# -- admission control --------------------------------------------------------


def test_queue_bound_rejects_overflow():
    svc = _service(admission=AdmissionPolicy(max_queue=2))
    responses = InProcessTransport(svc).request(
        *[SubmitThread(f"t{k}", _util()) for k in range(4)]
    )
    assert [r.ok for r in responses] == [True, True, False, False]
    assert all("queue full" in r.error for r in responses[2:])
    assert svc.counters[SERVICE_ADMISSION_REJECTS] == 2
    assert svc.state.n_threads == 2


def test_marginal_utility_floor_rejects_worthless_threads():
    svc = _service(admission=AdmissionPolicy(min_marginal_utility=0.1))
    responses = InProcessTransport(svc).request(
        SubmitThread("good", _util()), SubmitThread("zero", ZeroUtility(CAP))
    )
    assert responses[0].ok
    assert not responses[1].ok
    assert "below floor" in responses[1].error
    assert svc.counters[SERVICE_ADMISSION_REJECTS] == 1
    assert svc.state.thread_ids == ["good"]


def test_request_counter_counts_everything():
    svc = _service(admission=AdmissionPolicy(max_queue=1))
    InProcessTransport(svc).request(
        SubmitThread("a", _util()), SubmitThread("b", _util()), QueryAssignment()
    )
    assert svc.counters[SERVICE_REQUESTS] == 3


# -- replan policy ------------------------------------------------------------


def test_drift_triggered_replan_restores_alpha():
    """Departures strand load on one server; the drift trigger must fix it."""
    svc = _service(replan=ReplanPolicy(drift_threshold=ALPHA, max_staleness=None))
    bus = InProcessTransport(svc)
    bus.request(*[SubmitThread(f"t{k}", _util()) for k in range(4)])
    # Find the two residents of server 1 and remove them in one batch:
    # the two survivors now share server 0 while server 1 idles, which
    # certifies below α and must fire a drift replan within that step.
    a = svc.state.assignment()
    ids = svc.state.thread_ids
    victims = [t for t, j in zip(ids, a.servers) if j == 1]
    assert len(victims) == 2  # identical threads spread 2 + 2
    bus.request(*[RemoveThread(t) for t in victims])
    assert svc.counters[SERVICE_REPLANS] == 1
    assert svc.counters[SERVICE_MIGRATIONS] >= 1
    assert svc.last_ratio >= ALPHA - 1e-9
    # After the replan the two survivors own one server each.
    final = svc.state.assignment()
    assert sorted(final.servers.tolist()) == [0, 1]


def test_certified_ratio_stays_above_alpha_under_churn():
    svc = _service(
        n_servers=3, replan=ReplanPolicy(drift_threshold=ALPHA, max_staleness=None)
    )
    bus = InProcessTransport(svc)
    import numpy as np

    rng = np.random.default_rng(7)
    alive = []
    for step in range(12):
        batch = []
        for _ in range(int(rng.integers(1, 4))):
            if alive and rng.uniform() < 0.4:
                batch.append(RemoveThread(alive.pop(int(rng.integers(len(alive))))))
            else:
                tid = f"s{step}n{len(batch)}"
                batch.append(SubmitThread(tid, _util(float(rng.uniform(0.5, 3.0)))))
                alive.append(tid)
        bus.request(*batch)
        if svc.state.n_threads:
            assert svc.last_ratio >= ALPHA - 1e-9


def test_staleness_triggered_replan():
    svc = _service(replan=ReplanPolicy(drift_threshold=0.0, max_staleness=2))
    bus = InProcessTransport(svc)
    bus.request(SubmitThread("a", _util()))
    assert svc.counters[SERVICE_REPLANS] == 0
    bus.request(SubmitThread("b", _util()))
    assert svc.counters[SERVICE_REPLANS] == 1
    assert svc.state.steps_since_replan == 0


def test_forced_rebalance_reports_outcome():
    svc = _service()
    resp = InProcessTransport(svc).request(
        SubmitThread("a", _util()), Rebalance()
    )[1]
    assert resp.ok
    assert resp.data["replanned"] is True
    assert resp.data["reason"] == "requested"
    assert resp.data["ratio"] == pytest.approx(1.0)


def test_migration_budget_declines_expensive_replans():
    svc = _service(
        replan=ReplanPolicy(drift_threshold=1.0, max_staleness=None, migration_budget=0)
    )
    bus = InProcessTransport(svc)
    bus.request(*[SubmitThread(f"t{k}", _util()) for k in range(4)])
    a = svc.state.assignment()
    victims = [t for t, j in zip(svc.state.thread_ids, a.servers) if j == 1]
    before = svc.state.assignment().servers.copy()
    bus.request(*[RemoveThread(t) for t in victims])
    # drift_threshold=1.0 wants a replan every step, but budget 0 declines
    # any plan that would move a thread — placements must be unchanged.
    survivors = svc.state.assignment()
    assert svc.counters[SERVICE_MIGRATIONS] == 0
    assert all(s in before for s in survivors.servers)


def test_tiny_deadline_abandons_replan_but_keeps_serving():
    svc = _service(solve_budget_s=1e-9)
    responses = InProcessTransport(svc).request(
        SubmitThread("a", _util()), Rebalance()
    )
    assert responses[0].ok  # greedy placement has no solver deadline
    assert not responses[1].ok
    assert "abandoned" in responses[1].error
    assert svc.state.n_threads == 1  # state stays feasible and live


# -- observability ------------------------------------------------------------


def test_sink_receives_request_step_and_span_events():
    sink = MemorySink()
    svc = _service(sink=sink)
    InProcessTransport(svc).request(
        SubmitThread("a", _util()), SubmitThread("b", _util())
    )
    kinds = {e["type"] for e in sink.events}
    assert {"request", "step", "span"} <= kinds
    step = sink.of_type("step")[0]
    assert step["batch_size"] == 2
    assert step["n_threads"] == 2
    latencies = [e["latency_s"] for e in sink.of_type("request")]
    assert len(latencies) == 2 and all(t >= 0 for t in latencies)


def test_solver_counters_merge_into_service_counters():
    svc = _service()
    InProcessTransport(svc).request(SubmitThread("a", _util()), Rebalance())
    # The forced alg2 re-solve ran under the step context, whose solver
    # counters (waterfill, linearize, …) must surface in the lifetime view.
    assert svc.counters["linearize_calls"] >= 1


# -- snapshot / restore -------------------------------------------------------


def test_snapshot_restore_roundtrip_bit_identical():
    svc = _service(n_servers=3)
    bus = InProcessTransport(svc)
    bus.request(*[SubmitThread(f"t{k}", _util(1 + k)) for k in range(6)])
    bus.request(RemoveThread("t2"), Rebalance())
    snap = bus.request(Snapshot())[0]
    assert snap.ok
    restored = ClusterState.from_dict(
        json.loads(json.dumps(snap.data["state"]))
    )
    assert restored.to_dict() == svc.state.to_dict()


def test_warm_restart_continues_serving():
    svc = _service()
    bus = InProcessTransport(svc)
    bus.request(*[SubmitThread(f"t{k}", _util()) for k in range(3)])
    restored = ClusterState.from_dict(svc.state.to_dict())
    svc2 = AllocationService(restored)
    responses = InProcessTransport(svc2).request(
        SubmitThread("late", _util()), QueryAssignment()
    )
    assert responses[0].ok
    assert responses[1].data["n_threads"] == 4
    assert responses[1].data["version"] == svc.state.version + 1


def test_snapshot_to_disk(tmp_path):
    from repro.service import load_snapshot

    svc = _service()
    bus = InProcessTransport(svc)
    bus.request(SubmitThread("a", _util()))
    path = tmp_path / "snap.json"
    resp = bus.request(Snapshot(path=str(path)))[0]
    assert resp.ok and path.exists()
    assert load_snapshot(path).to_dict() == svc.state.to_dict()
