"""Request/response dataclasses and their JSON codecs."""

import json

import numpy as np
import pytest

from repro.service.api import (
    MUTATING_OPS,
    QueryAssignment,
    Rebalance,
    RemoveThread,
    Response,
    Snapshot,
    SubmitThread,
    UpdateCapacity,
    request_from_dict,
    request_to_dict,
    response_from_dict,
    response_to_dict,
)
from repro.utility.functions import LogUtility, PiecewiseLinearUtility

CAP = 10.0


def _roundtrip(req):
    return request_from_dict(json.loads(json.dumps(request_to_dict(req))))


def test_submit_roundtrip_carries_utility():
    req = SubmitThread("t1", LogUtility(2.0, 1.5, CAP), request_id="r-1")
    back = _roundtrip(req)
    assert isinstance(back, SubmitThread)
    assert back.thread_id == "t1"
    assert back.request_id == "r-1"
    xs = np.linspace(0, CAP, 7)
    assert np.allclose(back.utility.value(xs), req.utility.value(xs))


def test_submit_roundtrip_piecewise():
    f = PiecewiseLinearUtility([0.0, 2.0, 5.0], [0.0, 3.0, 4.0], cap=CAP)
    back = _roundtrip(SubmitThread("pw", f))
    assert np.allclose(back.utility.xs, f.xs)
    assert np.allclose(back.utility.ys, f.ys)


@pytest.mark.parametrize(
    "req",
    [
        RemoveThread("t2", request_id="x"),
        UpdateCapacity(42.5),
        Rebalance(request_id="rb"),
        QueryAssignment(),
        QueryAssignment(thread_id="t3"),
        Snapshot(),
        Snapshot(path="/tmp/s.json"),
    ],
)
def test_request_roundtrip(req):
    assert _roundtrip(req) == req


def test_mutating_ops_partition():
    assert SubmitThread.op in MUTATING_OPS
    assert RemoveThread.op in MUTATING_OPS
    assert UpdateCapacity.op in MUTATING_OPS
    assert Rebalance.op in MUTATING_OPS
    assert QueryAssignment.op not in MUTATING_OPS
    assert Snapshot.op not in MUTATING_OPS


def test_request_missing_op_rejected():
    with pytest.raises(ValueError, match="missing 'op'"):
        request_from_dict({"thread_id": "t"})


def test_request_unknown_op_rejected():
    with pytest.raises(ValueError, match="unknown request op"):
        request_from_dict({"op": "explode"})


def test_response_roundtrip():
    resp = Response.success("submit", request_id="r", server=3, projected_gain=1.5)
    back = response_from_dict(json.loads(json.dumps(response_to_dict(resp))))
    assert back == resp


def test_response_failure_roundtrip():
    resp = Response.failure("remove", "unknown thread 'x'", request_id="q")
    back = response_from_dict(response_to_dict(resp))
    assert not back.ok
    assert back.error == "unknown thread 'x'"


def test_response_missing_fields_rejected():
    with pytest.raises(ValueError, match="missing"):
        response_from_dict({"data": {}})
