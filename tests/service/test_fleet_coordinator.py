"""FleetCoordinator: routing, broadcast, rebalance, snapshot, TCP, metrics."""

import json

import pytest

from repro.observability import (
    FLEET_MIGRATIONS,
    FLEET_REBALANCES,
    FLEET_STEPS,
    MemorySink,
)
from repro.service import (
    AllocationService,
    ClusterState,
    FleetCoordinator,
    FleetPolicy,
    InProcessTransport,
    QueryAssignment,
    QueryMetrics,
    Rebalance,
    RemoveThread,
    ShardRouter,
    Snapshot,
    SubmitThread,
    UpdateCapacity,
    fleet_snapshot_from_dict,
    fleet_snapshot_to_dict,
    load_fleet_snapshot,
    save_fleet_snapshot,
)
from repro.utility.functions import LogUtility

CAP = 10.0


def _util(c=1.0):
    return LogUtility(c, 1.0, CAP)


def _shard(n_servers=2):
    return AllocationService(ClusterState(n_servers, CAP))


def _fleet(n_shards=3, policy=None, **kwargs):
    return FleetCoordinator(
        [_shard() for _ in range(n_shards)], policy=policy, **kwargs
    )


def _submit_burst(fleet, n, prefix="t"):
    reqs = [SubmitThread(f"{prefix}{i}", _util(1.0 + 0.2 * i)) for i in range(n)]
    resps = fleet.process(reqs)
    assert all(r.ok for r in resps), [r.error for r in resps if not r.ok]
    return resps


# -- routing -------------------------------------------------------------------


def test_submits_follow_the_router_and_are_shard_tagged():
    fleet = _fleet()
    resps = _submit_burst(fleet, 12)
    for i, resp in enumerate(resps):
        assert resp.data["shard"] == fleet.router.route(f"t{i}")
        assert fleet.locate(f"t{i}") == resp.data["shard"]


def test_remove_routes_to_the_resident_shard():
    fleet = _fleet()
    _submit_burst(fleet, 6)
    shard = fleet.locate("t3")
    resp = fleet.handle(RemoveThread("t3"))
    assert resp.ok and resp.data["shard"] == shard
    assert fleet.locate("t3") is None
    assert not fleet.handle(RemoveThread("t3")).ok  # now unknown


def test_pinned_thread_lands_on_its_pinned_shard():
    router = ShardRouter(3, pins={"vip": 2})
    fleet = FleetCoordinator([_shard() for _ in range(3)], router=router)
    resp = fleet.handle(SubmitThread("vip", _util()))
    assert resp.ok and resp.data["shard"] == 2


def test_duplicate_submit_is_refused_at_the_resident_shard():
    # Resident threads are addressed at their current home, so a repeated
    # submit is refused there instead of double-placing on another shard.
    fleet = _fleet()
    _submit_burst(fleet, 6)
    home = fleet.locate("t0")
    resp = fleet.handle(SubmitThread("t0", _util()))
    assert not resp.ok and resp.data["shard"] == home
    assert fleet.n_threads == 6


def test_per_thread_query_and_unknown_thread():
    fleet = _fleet()
    _submit_burst(fleet, 4)
    q = fleet.handle(QueryAssignment(thread_id="t2"))
    assert q.ok and "allocation" in q.data and q.data["shard"] == fleet.locate("t2")
    assert not fleet.handle(QueryAssignment(thread_id="nope")).ok


# -- batching / broadcast ------------------------------------------------------


def test_one_fleet_step_per_batch():
    fleet = _fleet()
    _submit_burst(fleet, 9)
    assert fleet.steps == 1
    assert fleet.counters.snapshot()[FLEET_STEPS] == 1
    _submit_burst(fleet, 3, prefix="u")
    assert fleet.steps == 2


def test_read_only_batch_is_not_a_step():
    fleet = _fleet()
    _submit_burst(fleet, 3)
    fleet.process([QueryAssignment(), QueryMetrics()])
    assert fleet.steps == 1


def test_capacity_update_broadcasts_to_every_shard():
    fleet = _fleet()
    _submit_burst(fleet, 6)
    resp = fleet.handle(UpdateCapacity(2 * CAP))
    assert resp.ok and len(resp.data["shards"]) == 3
    for s in fleet.status()["shards"]:
        assert s["capacity"] == 2 * CAP


def test_infeasible_capacity_update_reports_failing_shards():
    fleet = _fleet()
    _submit_burst(fleet, 6)
    resp = fleet.handle(UpdateCapacity(-1.0))
    assert not resp.ok and "shard" in resp.error


def test_responses_align_with_requests_in_mixed_batch():
    fleet = _fleet()
    _submit_burst(fleet, 4)
    resps = fleet.process(
        [
            RemoveThread("t1"),
            SubmitThread("x1", _util()),
            QueryAssignment(),
            RemoveThread("ghost"),
        ]
    )
    assert [r.op for r in resps] == ["remove", "submit", "query", "remove"]
    assert [r.ok for r in resps] == [True, True, True, False]
    # The read sees the post-step fleet: t1 gone, x1 resident.
    assert resps[2].data["n_threads"] == 4


# -- aggregate status / certificate --------------------------------------------


def test_status_aggregates_and_is_a_superset_of_service_status():
    fleet = _fleet()
    _submit_burst(fleet, 12)
    st = fleet.status()
    assert st["fleet"] and st["n_shards"] == 3
    assert st["n_threads"] == 12
    assert st["n_servers"] == 6
    assert len(st["server_loads"]) == 6
    # Single-service status keys a generic client renders:
    for key in (
        "version",
        "capacity",
        "total_utility",
        "queue_length",
        "steps_since_replan",
        "last_bound",
        "last_ratio",
        "last_certified_version",
    ):
        assert key in st, key
    per_shard = sum(s["n_threads"] for s in st["shards"])
    assert per_shard == 12


def test_certificate_composes_and_holds_alpha_under_churn():
    fleet = _fleet()
    _submit_burst(fleet, 15)
    fleet.process([RemoveThread(f"t{i}") for i in range(0, 15, 3)])
    _submit_burst(fleet, 5, prefix="u")
    cert = fleet.certificate()
    assert cert.complete
    assert cert.utility == pytest.approx(
        sum(s["total_utility"] for s in fleet.status()["shards"])
    )
    assert cert.holds()  # min shard ratio ≥ α ⇒ fleet ratio ≥ α
    assert cert.ratio >= cert.min_shard_ratio - 1e-9
    assert cert.ratio <= cert.max_shard_ratio + 1e-9
    assert fleet.gap.stats()["ok"]


def test_empty_fleet_certifies_trivially():
    fleet = _fleet()
    cert = fleet.certificate()
    assert cert.complete and cert.ratio == 1.0 and cert.holds()


# -- cross-shard rebalance -----------------------------------------------------


def _skewed_fleet(policy=None):
    """Everything pinned onto shard 0 — maximal cross-shard imbalance."""
    router = ShardRouter(3, pins={f"t{i}": 0 for i in range(12)})
    fleet = FleetCoordinator(
        [_shard() for _ in range(3)],
        router=router,
        policy=policy
        or FleetPolicy(rebalance_interval=None, imbalance_threshold=None),
    )
    _submit_burst(fleet, 12)
    return fleet


def test_forced_rebalance_strictly_improves_a_skewed_fleet():
    fleet = _skewed_fleet()
    before = fleet.certificate().utility
    resp = fleet.handle(Rebalance())
    assert resp.ok and resp.data["migrations"] > 0
    after = fleet.certificate().utility
    assert after > before
    assert resp.data["utility_after"] == pytest.approx(after)
    assert fleet.counters.snapshot()[FLEET_REBALANCES] == 1
    assert fleet.counters.snapshot()[FLEET_MIGRATIONS] == resp.data["migrations"]
    # The location map tracked every move.
    for tid, shard in [(f"t{i}", fleet.locate(f"t{i}")) for i in range(12)]:
        q = fleet.handle(QueryAssignment(thread_id=tid))
        assert q.ok and q.data["shard"] == shard


def test_migration_budget_caps_moves():
    fleet = _skewed_fleet(
        FleetPolicy(
            rebalance_interval=None, imbalance_threshold=None, migration_budget=2
        )
    )
    resp = fleet.handle(Rebalance())
    assert resp.ok and 0 < resp.data["migrations"] <= 2


def test_zero_budget_rebalance_moves_nothing():
    fleet = _skewed_fleet(
        FleetPolicy(
            rebalance_interval=None, imbalance_threshold=None, migration_budget=0
        )
    )
    resp = fleet.handle(Rebalance())
    assert resp.ok and resp.data["migrations"] == 0


def test_rebalance_never_decreases_fleet_utility():
    fleet = _fleet(policy=FleetPolicy(rebalance_interval=None,
                                      imbalance_threshold=None))
    _submit_burst(fleet, 10)
    before = fleet.certificate().utility
    resp = fleet.handle(Rebalance())
    assert resp.ok
    assert fleet.certificate().utility >= before - 1e-9


def test_imbalance_trigger_fires_automatically():
    sink = MemorySink()
    router = ShardRouter(2, pins={f"t{i}": 0 for i in range(8)})
    fleet = FleetCoordinator(
        [_shard(), _shard()],
        router=router,
        policy=FleetPolicy(rebalance_interval=None, imbalance_threshold=0.3),
        sink=sink,
    )
    _submit_burst(fleet, 8)
    kinds = [e["type"] for e in sink.events]
    assert "fleet_rebalance" in kinds
    assert fleet.migrations > 0


def test_interval_trigger_fires_after_n_steps():
    fleet = _fleet(
        2, policy=FleetPolicy(rebalance_interval=3, imbalance_threshold=None)
    )
    for i in range(3):
        fleet.handle(SubmitThread(f"s{i}", _util()))
    assert fleet.rebalances == 1
    assert fleet.steps_since_rebalance == 0


def test_policy_validation():
    with pytest.raises(ValueError):
        FleetPolicy(rebalance_interval=0)
    with pytest.raises(ValueError):
        FleetPolicy(imbalance_threshold=1.5)
    with pytest.raises(ValueError):
        FleetPolicy(migration_budget=-1)
    with pytest.raises(ValueError):
        FleetPolicy(min_gain=-0.1)


# -- snapshot / warm restart ---------------------------------------------------


def test_fleet_snapshot_roundtrip_is_bit_identical():
    fleet = _fleet()
    _submit_burst(fleet, 10)
    fleet.handle(Rebalance())
    doc = fleet_snapshot_to_dict(fleet)
    clone = fleet_snapshot_from_dict(doc)
    assert json.dumps(fleet_snapshot_to_dict(clone), sort_keys=True) == json.dumps(
        doc, sort_keys=True
    )


def test_fleet_snapshot_restores_locations_and_keeps_serving(tmp_path):
    fleet = _fleet()
    _submit_burst(fleet, 9)
    path = tmp_path / "fleet.json"
    save_fleet_snapshot(fleet, path)
    warm = load_fleet_snapshot(path)
    assert warm.n_shards == 3 and warm.n_threads == 9
    for i in range(9):
        assert warm.locate(f"t{i}") == fleet.locate(f"t{i}")
    # The restored fleet can serve — including migrating restored threads
    # (their utilities were recovered from the shard snapshots).
    assert warm.handle(SubmitThread("fresh", _util())).ok
    assert warm.handle(RemoveThread("t4")).ok
    assert warm.handle(Rebalance()).ok
    assert warm.certificate().holds()


def test_snapshot_request_returns_fleet_document():
    fleet = _fleet()
    _submit_burst(fleet, 4)
    resp = fleet.handle(Snapshot())
    assert resp.ok and resp.data["fleet"]["format"] == "aart-fleet-snapshot/1"
    assert len(resp.data["fleet"]["shards"]) == 3


def test_sync_from_shards_adopts_existing_residents():
    shards = [_shard() for _ in range(2)]
    InProcessTransport(shards[0]).request(SubmitThread("a", _util()))
    InProcessTransport(shards[1]).request(SubmitThread("b", _util()))
    fleet = FleetCoordinator(shards)
    assert fleet.n_threads == 2
    assert fleet.locate("a") == 0 and fleet.locate("b") == 1
    assert fleet.handle(RemoveThread("a")).ok


# -- transports / introspection ------------------------------------------------


def test_fleet_behind_tcp_serves_the_whole_protocol():
    from repro.service import Client, TcpServer

    fleet = _fleet()
    server = TcpServer(fleet, port=0).start()
    try:
        with Client(port=server.port) as client:
            for i in range(6):
                assert client.submit(f"n{i}", _util(1.0 + i)).ok
            status = client.status()
            assert status["fleet"] and status["n_threads"] == 6
            assert client.rebalance().ok
            data = client.metrics()
            assert data["fleet"] and data["n_shards"] == 3
            snap = client.snapshot()
            assert snap.data["fleet"]["format"] == "aart-fleet-snapshot/1"
    finally:
        server.stop()


def test_metrics_snapshot_carries_shard_labels_and_fleet_gauges():
    fleet = _fleet()
    _submit_burst(fleet, 9)
    text = fleet.metrics_text()
    for k in range(3):
        assert f'shard="{k}"' in text
    assert "aart_fleet_gap_ratio" in text
    assert "aart_fleet_utility_total" in text
    assert "aart_fleet_threads 9" in text


def test_health_covers_every_shard_and_the_composed_certificate():
    fleet = _fleet()
    _submit_burst(fleet, 6)
    health = fleet.health()
    assert health["status"] == "ok"
    assert len(health["shards"]) == 3 and all(s["ok"] for s in health["shards"])
    assert health["certificate"]["holds_alpha"]


def test_http_sidecar_serves_fleet_metrics_and_health():
    import urllib.request

    from repro.service import MetricsHttpServer

    fleet = _fleet()
    _submit_burst(fleet, 6)
    with MetricsHttpServer(fleet, port=0) as httpd:
        base = f"http://{httpd.host}:{httpd.port}"
        body = urllib.request.urlopen(f"{base}/metrics").read().decode()
        assert 'shard="1"' in body
        health = json.loads(urllib.request.urlopen(f"{base}/healthz").read())
        assert health["fleet"] and health["status"] == "ok"


def test_constructor_validation():
    with pytest.raises(ValueError):
        FleetCoordinator([])
    with pytest.raises(TypeError):
        FleetCoordinator([object()])
    with pytest.raises(ValueError):
        FleetCoordinator([_shard()], router=ShardRouter(2))
