"""The intro's fixed-request pathology: first-fit policy and closed forms."""

import numpy as np
import pytest

from repro.assign.fixed_request import (
    fixed_request_first_fit,
    fixed_request_total_utility,
    optimal_equal_split_utility,
)
from repro.core.problem import AAProblem
from repro.utility.functions import PowerUtility

C = 10.0


def _power_problem(n, m=1, beta=0.5):
    return AAProblem([PowerUtility(1.0, beta, C) for _ in range(n)], m, C)


def test_first_fit_places_while_room():
    p = _power_problem(4, m=1)
    a = fixed_request_first_fit(p, np.full(4, 4.0))
    # Requests of 4 on a 10-server: two fit, the rest get nothing.
    assert sorted(a.allocations.tolist(), reverse=True)[:2] == [4.0, 4.0]
    assert np.sum(a.allocations > 0) == 2


def test_first_fit_feasible():
    p = _power_problem(6, m=2)
    a = fixed_request_first_fit(p, np.full(6, 3.0))
    a.validate(p)


def test_first_fit_rejects_bad_requests():
    p = _power_problem(2)
    with pytest.raises(ValueError):
        fixed_request_first_fit(p, [1.0])
    with pytest.raises(ValueError):
        fixed_request_first_fit(p, [-1.0, 1.0])
    with pytest.raises(ValueError):
        fixed_request_first_fit(p, [C + 1.0, 1.0])


def test_closed_form_matches_policy():
    n, z, beta = 7, 4.0, 0.5
    p = _power_problem(n, m=1, beta=beta)
    a = fixed_request_first_fit(p, np.full(n, z))
    assert a.total_utility(p) == pytest.approx(
        fixed_request_total_utility(C, z, beta, n)
    )


def test_intro_gap_grows_with_n():
    """Optimal / fixed-request utility grows like n^(1-beta) (Section I)."""
    beta, z = 0.5, 2.0
    gaps = [
        optimal_equal_split_utility(C, beta, n) / fixed_request_total_utility(C, z, beta, n)
        for n in (10, 40, 160)
    ]
    assert gaps[0] < gaps[1] < gaps[2]
    # Quadrupling n should roughly double the gap at beta = 1/2.
    assert gaps[1] / gaps[0] == pytest.approx(2.0, rel=0.05)


def test_fixed_request_constant_in_n():
    beta, z = 0.5, 2.0
    u10 = fixed_request_total_utility(C, z, beta, 10)
    u100 = fixed_request_total_utility(C, z, beta, 100)
    assert u10 == pytest.approx(u100)


def test_optimal_equal_split_closed_form():
    # n threads with f = x^beta on pool mC: n * (mC/n)^beta.
    assert optimal_equal_split_utility(10.0, 0.5, 4, m=2) == pytest.approx(
        4 * (20.0 / 4) ** 0.5
    )


def test_equal_split_zero_threads():
    assert optimal_equal_split_utility(10.0, 0.5, 0) == 0.0
