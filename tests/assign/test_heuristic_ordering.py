"""Statistical ordering of the heuristics (paper Sec VII observations).

The paper observes that uniform allocation beats random allocation
("UU and RU ... substantially better than UR and RR") and that assignment
matters less than allocation.  These tests verify the orderings as sample
means over many seeded instances — statistical claims, so moderately sized
samples with comfortable margins.
"""


from repro.assign.heuristics import rr, ru, ur, uu
from repro.workloads.generators import (
    PowerLawDistribution,
    UniformDistribution,
    make_problem,
)

TRIALS = 60
GEOM = dict(n_servers=4, beta=6.0, capacity=100.0)


def _mean_utilities(dist, seed0=0):
    sums = {"UU": 0.0, "UR": 0.0, "RU": 0.0, "RR": 0.0}
    for t in range(TRIALS):
        p = make_problem(dist, seed=(seed0, t), **GEOM)
        for name, h in (("UU", uu), ("UR", ur), ("RU", ru), ("RR", rr)):
            sums[name] += h(p, seed=t).total_utility(p)
    return {k: v / TRIALS for k, v in sums.items()}


def test_uniform_allocation_beats_random_allocation_uniform_dist():
    means = _mean_utilities(UniformDistribution())
    assert means["UU"] > means["UR"]
    assert means["RU"] > means["RR"]


def test_uniform_allocation_beats_random_allocation_powerlaw():
    means = _mean_utilities(PowerLawDistribution(alpha=2.0), seed0=1)
    assert means["UU"] > means["UR"]
    assert means["RU"] > means["RR"]


def test_allocation_matters_more_than_assignment():
    """Sec VII-A: 'the way in which resources are allocated has a bigger
    effect on performance than how threads are assigned'."""
    means = _mean_utilities(UniformDistribution(), seed0=2)
    allocation_effect = abs(means["UU"] - means["UR"])
    assignment_effect = abs(means["UU"] - means["RU"])
    assert allocation_effect > assignment_effect


def test_round_robin_assignment_beats_random_assignment_on_average():
    means = _mean_utilities(UniformDistribution(), seed0=3)
    assert means["UU"] >= means["RU"] * 0.99
    assert means["UR"] >= means["RR"] * 0.99


def test_all_heuristics_positive_value():
    means = _mean_utilities(UniformDistribution(), seed0=4)
    assert all(v > 0 for v in means.values())
