"""Two-step baselines: balanced water-fill, IPC-greedy, best-of-random."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.assign.twostep import balanced_waterfill, best_of_random, ipc_greedy
from repro.core.problem import AAProblem
from repro.core.solve import solve
from repro.utility.functions import CappedLinearUtility, LogUtility

from tests.conftest import CAP, aa_problems


def _problem(n=8, m=3):
    return AAProblem([LogUtility(1.0 + i, 1.0, CAP) for i in range(n)], m, CAP)


@pytest.mark.parametrize(
    "baseline", [balanced_waterfill, ipc_greedy], ids=lambda f: f.__name__
)
def test_deterministic_baselines_feasible(baseline):
    p = _problem()
    baseline(p).validate(p)


def test_best_of_random_feasible():
    p = _problem()
    best_of_random(p, samples=5, seed=1).validate(p)


def test_balanced_waterfill_beats_uu():
    """Optimal per-server allocation can only improve on equal shares."""
    from repro.assign.heuristics import uu

    p = _problem(9, 3)
    assert balanced_waterfill(p).total_utility(p) >= uu(p).total_utility(p) - 1e-9


def test_best_of_random_improves_with_samples():
    p = _problem(12, 3)
    one = best_of_random(p, samples=1, seed=0).total_utility(p)
    many = best_of_random(p, samples=32, seed=0).total_utility(p)
    assert many >= one - 1e-9


def test_best_of_random_rejects_zero_samples():
    with pytest.raises(ValueError):
        best_of_random(_problem(), samples=0)


def test_ipc_greedy_serpentine_balances_counts():
    p = _problem(9, 3)
    a = ipc_greedy(p)
    counts = np.bincount(a.servers, minlength=3)
    assert counts.tolist() == [3, 3, 3]


def test_joint_beats_twostep_on_adversarial_mix():
    """The paper's thesis: separate assign-then-allocate can be beaten.

    Two 'hog' threads that only profit from a whole server plus small
    threads: count-balancing splits hogs with small threads and wastes
    capacity, while Algorithm 2 co-locates the small threads.
    """
    fns = [
        CappedLinearUtility(1.0, CAP, CAP),  # hog: wants the whole server
        CappedLinearUtility(1.0, CAP, CAP),
        CappedLinearUtility(0.5, 2.0, CAP),
        CappedLinearUtility(0.5, 2.0, CAP),
        CappedLinearUtility(0.5, 2.0, CAP),
        CappedLinearUtility(0.5, 2.0, CAP),
    ]
    p = AAProblem(fns, 2, CAP)
    joint = solve(p).total_utility
    assert joint >= balanced_waterfill(p).total_utility(p) - 1e-9
    assert joint >= ipc_greedy(p).total_utility(p) - 1e-9


@settings(max_examples=20, deadline=None)
@given(aa_problems(max_threads=7, max_servers=3))
def test_all_baselines_within_superoptimal_bound(problem):
    from repro.core.linearize import linearize

    bound = linearize(problem).super_optimal_utility
    for baseline in (balanced_waterfill, ipc_greedy):
        value = baseline(problem).total_utility(problem)
        assert value <= bound + 1e-6 * (1 + bound)
