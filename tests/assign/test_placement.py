"""Fixed-demand density placement baseline."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.assign.placement import density_placement, placement_then_waterfill
from repro.core.linearize import linearize
from repro.core.problem import AAProblem
from repro.core.solve import solve
from repro.utility.functions import CappedLinearUtility, LogUtility

from tests.conftest import CAP, aa_problems


def _problem(n=6, m=2):
    return AAProblem([LogUtility(1.0 + i, 1.0, CAP) for i in range(n)], m, CAP)


def test_placement_feasible():
    p = _problem(8, 3)
    density_placement(p).validate(p)


def test_placed_threads_get_exactly_their_demand():
    p = _problem(4, 2)
    lin = linearize(p)
    a = density_placement(p, lin)
    placed = a.allocations > 0
    assert np.allclose(a.allocations[placed], lin.c_hat[placed])


def test_unplaceable_thread_parks_with_zero():
    # Three identical linear-to-cap threads on two servers: the pool split
    # gives each a demand of 2C/3, so only two fit and one must park.
    fns = [CappedLinearUtility(1.0, CAP, CAP) for _ in range(3)]
    p = AAProblem(fns, 2, CAP)
    lin = linearize(p)
    assert lin.c_hat == pytest.approx(np.full(3, 2 * CAP / 3))
    a = density_placement(p, lin)
    alloc = sorted(a.allocations.tolist())
    assert alloc[0] == pytest.approx(0.0)
    assert alloc[1] == alloc[2] == pytest.approx(2 * CAP / 3)


def test_density_order_prefers_efficient_threads():
    # Steep small thread and shallow big thread compete for one server.
    fns = [
        CappedLinearUtility(5.0, 2.0, CAP),  # density 5
        CappedLinearUtility(1.0, 10.0, CAP),  # density 1
    ]
    p = AAProblem(fns, 1, CAP)
    a = density_placement(p)
    assert a.allocations[0] == pytest.approx(2.0)  # placed first


def test_waterfill_variant_dominates_raw_placement():
    p = _problem(9, 3)
    lin = linearize(p)
    raw = density_placement(p, lin).total_utility(p)
    strong = placement_then_waterfill(p, lin).total_utility(p)
    assert strong >= raw - 1e-9


@settings(max_examples=25, deadline=None)
@given(aa_problems(max_threads=7, max_servers=3))
def test_alg2_within_alpha_of_fixed_demand_placement(problem):
    """Per instance Alg2 may lose to a lucky perfect pack (it is only
    α-approximate), but never by more than the guarantee; the *mean*
    dominance is measured in bench_ablation.py."""
    from repro.core.problem import ALPHA

    ours = solve(problem).total_utility
    placed = density_placement(problem).total_utility(problem)
    assert ours >= ALPHA * placed - 1e-6 * (1 + abs(placed))


def test_alg2_beats_placement_on_average():
    from repro.workloads.generators import PowerLawDistribution, make_problem

    dist = PowerLawDistribution(alpha=2.0)
    ours = placed = 0.0
    for t in range(30):
        p = make_problem(dist, 4, 5.0, 100.0, seed=(9, t))
        ours += solve(p).total_utility
        placed += density_placement(p).total_utility(p)
    assert ours > placed


@settings(max_examples=20, deadline=None)
@given(aa_problems(max_threads=7, max_servers=3))
def test_placement_always_feasible(problem):
    density_placement(problem).validate(problem)
    placement_then_waterfill(problem).validate(problem)
