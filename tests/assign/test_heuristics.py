"""UU / UR / RU / RR heuristics: feasibility, structure, known optima."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.assign.heuristics import (
    HEURISTICS,
    random_split,
    round_robin_servers,
    rr,
    ru,
    uniform_split,
    ur,
    uu,
)
from repro.core.problem import AAProblem
from repro.utility.functions import LogUtility

from tests.conftest import CAP, aa_problems


def _problem(n=8, m=3):
    return AAProblem([LogUtility(1.0 + i, 1.0, CAP) for i in range(n)], m, CAP)


@pytest.mark.parametrize("name", list(HEURISTICS))
def test_heuristics_produce_feasible_assignments(name):
    p = _problem()
    HEURISTICS[name](p, seed=7).validate(p)


@settings(max_examples=25, deadline=None)
@given(aa_problems(max_threads=8, max_servers=4))
def test_heuristics_feasible_on_random_instances(problem):
    for name, h in HEURISTICS.items():
        h(problem, seed=3).validate(problem)


def test_round_robin_pattern():
    assert round_robin_servers(7, 3).tolist() == [0, 1, 2, 0, 1, 2, 0]


def test_uu_equal_shares():
    p = _problem(6, 3)
    a = uu(p)
    assert a.allocations == pytest.approx(np.full(6, CAP / 2))


def test_uu_single_thread_per_server_gets_everything():
    p = _problem(3, 3)
    a = uu(p)
    assert a.allocations == pytest.approx(np.full(3, CAP))


def test_uu_is_optimal_at_beta_one_with_identical_threads():
    """Paper Sec VII-A: at beta = 1, UU places one thread per server with
    all resources — the optimum."""
    from repro.core.solve import solve

    p = _problem(4, 4)
    sol = solve(p)
    assert uu(p).total_utility(p) == pytest.approx(sol.total_utility, rel=1e-9)


def test_uu_deterministic_ignores_seed():
    p = _problem()
    a = uu(p, seed=1)
    b = uu(p, seed=999)
    assert np.array_equal(a.servers, b.servers)
    assert a.allocations == pytest.approx(b.allocations)


def test_ur_round_robin_but_random_split():
    p = _problem(6, 3)
    a = ur(p, seed=0)
    assert np.array_equal(a.servers, round_robin_servers(6, 3))
    # Random split: extremely unlikely to be exactly equal.
    assert not np.allclose(a.allocations, CAP / 2)


def test_ru_random_assignment_uniform_split():
    p = _problem(40, 4)
    a = ru(p, seed=0)
    counts = np.bincount(a.servers, minlength=4)
    shares = a.allocations * counts[a.servers]
    assert shares == pytest.approx(np.full(40, CAP))


def test_rr_reproducible_by_seed():
    p = _problem()
    a = rr(p, seed=42)
    b = rr(p, seed=42)
    assert np.array_equal(a.servers, b.servers)
    assert a.allocations == pytest.approx(b.allocations)


def test_rr_seeds_differ():
    p = _problem(30, 3)
    a = rr(p, seed=1)
    b = rr(p, seed=2)
    assert not np.array_equal(a.servers, b.servers) or not np.allclose(
        a.allocations, b.allocations
    )


def test_random_split_sums_to_capacity_per_server():
    p = _problem(9, 3)
    servers = round_robin_servers(9, 3)
    rng = np.random.default_rng(0)
    alloc = random_split(p, servers, rng)
    # Caps are CAP here, so no clipping: each server's split sums to C.
    loads = np.bincount(servers, weights=alloc, minlength=3)
    assert loads == pytest.approx(np.full(3, CAP))


def test_uniform_split_clips_to_thread_caps():
    from repro.utility.functions import LinearUtility

    fns = [LinearUtility(1.0, 2.0), LinearUtility(1.0, CAP)]
    p = AAProblem(fns, 1, CAP)
    alloc = uniform_split(p, np.array([0, 0]))
    assert alloc[0] == pytest.approx(2.0)
    assert alloc[1] == pytest.approx(5.0)


def test_single_member_random_split_gets_everything():
    p = _problem(1, 2)
    a = ur(p, seed=0)
    assert a.allocations[0] == pytest.approx(CAP)
