"""Public API surface: imports, __all__ hygiene, end-to-end smoke."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.utility",
    "repro.allocation",
    "repro.assign",
    "repro.hardness",
    "repro.workloads",
    "repro.experiments",
    "repro.analysis",
    "repro.extensions",
    "repro.simulate.cache",
    "repro.simulate.cloud",
    "repro.simulate.hosting",
    "repro.serialization",
    "repro.cli",
    "repro.utils",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", [p for p in PACKAGES if p not in ("repro.serialization", "repro.cli")])
def test_all_names_resolve(name):
    mod = importlib.import_module(name)
    exported = getattr(mod, "__all__", [])
    for symbol in exported:
        assert hasattr(mod, symbol), f"{name}.__all__ lists missing {symbol!r}"


def test_top_level_quickstart_flow():
    """The README quickstart, verbatim in spirit."""
    from repro import AAProblem, solve
    from repro.utility import LogUtility, PowerUtility, SaturatingUtility

    threads = [
        LogUtility(coeff=6.0, scale=10.0, cap=100.0),
        SaturatingUtility(vmax=5.0, k=8.0, cap=100.0),
        PowerUtility(coeff=1.2, beta=0.6, cap=100.0),
    ]
    problem = AAProblem(threads, n_servers=2, capacity=100.0)
    sol = solve(problem)
    assert sol.total_utility > 0
    assert sol.meets_guarantee
    assert sol.assignment.servers.shape == (3,)


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2
