"""JSON round-trips for problems, utilities and assignments."""

import json

import numpy as np
import pytest

from repro.core.problem import AAProblem, Assignment
from repro.serialization import (
    assignment_from_dict,
    assignment_to_dict,
    load_assignment,
    load_problem,
    problem_from_dict,
    problem_to_dict,
    save_assignment,
    save_problem,
)
from repro.utility.batch import QuadSplineBatch


def test_problem_roundtrip_mixed(mixed_utilities, tmp_path):
    problem = AAProblem(mixed_utilities, n_servers=3, capacity=10.0)
    path = tmp_path / "p.json"
    save_problem(problem, path)
    loaded = load_problem(path)
    assert loaded.n_servers == 3
    assert loaded.capacity == 10.0
    xs = np.linspace(0, 10, 21)
    for orig, new in zip(problem.utilities.functions(), loaded.utilities.functions()):
        assert np.allclose(orig.value(xs), new.value(xs))


def test_problem_roundtrip_quadspline_batch(tmp_path):
    batch = QuadSplineBatch([1.0, 2.0], [0.5, 1.5], 100.0)
    problem = AAProblem(batch, n_servers=2, capacity=100.0)
    path = tmp_path / "q.json"
    save_problem(problem, path)
    loaded = load_problem(path)
    xs = np.linspace(0, 100, 11)
    for orig, new in zip(batch.functions(), loaded.utilities.functions()):
        assert np.allclose(orig.value(xs), new.value(xs))


def test_problem_dict_is_json_serializable(small_problem):
    text = json.dumps(problem_to_dict(small_problem))
    assert "aart-problem/1" in text


def test_problem_rejects_wrong_format():
    with pytest.raises(ValueError, match="aart-problem"):
        problem_from_dict({"format": "something-else"})


def test_utility_unknown_type_rejected():
    data = {
        "format": "aart-problem/1",
        "n_servers": 1,
        "capacity": 1.0,
        "utilities": [{"type": "mystery"}],
    }
    with pytest.raises(ValueError, match="unknown utility type"):
        problem_from_dict(data)


def test_utility_missing_type_rejected():
    data = {
        "format": "aart-problem/1",
        "n_servers": 1,
        "capacity": 1.0,
        "utilities": [{"slope": 1.0}],
    }
    with pytest.raises(ValueError, match="missing 'type'"):
        problem_from_dict(data)


def test_assignment_roundtrip(tmp_path):
    a = Assignment(servers=[0, 1, 0], allocations=[1.5, 2.0, 0.0])
    path = tmp_path / "a.json"
    save_assignment(a, path)
    b = load_assignment(path)
    assert np.array_equal(a.servers, b.servers)
    assert np.allclose(a.allocations, b.allocations)


def test_assignment_rejects_wrong_format():
    with pytest.raises(ValueError, match="aart-assignment"):
        assignment_from_dict({"format": "nope", "servers": [], "allocations": []})


def test_roundtrip_preserves_solution_value(small_problem, tmp_path):
    from repro.core.solve import solve

    sol = solve(small_problem)
    p_path, a_path = tmp_path / "p.json", tmp_path / "a.json"
    save_problem(small_problem, p_path)
    save_assignment(sol.assignment, a_path)
    problem2 = load_problem(p_path)
    assignment2 = load_assignment(a_path)
    assignment2.validate(problem2)
    assert assignment2.total_utility(problem2) == pytest.approx(
        sol.total_utility, rel=1e-12
    )
