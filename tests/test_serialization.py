"""JSON round-trips for problems, utilities, assignments and scheduler state."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import CAP, utility_lists
from repro.core.problem import AAProblem, Assignment
from repro.extensions.online import OnlineScheduler
from repro.serialization import (
    assignment_from_dict,
    load_assignment,
    load_problem,
    problem_from_dict,
    problem_to_dict,
    save_assignment,
    save_problem,
    scheduler_state_from_dict,
    scheduler_state_to_dict,
    utility_from_dict,
    utility_to_dict,
)
from repro.utility.batch import QuadSplineBatch


def test_problem_roundtrip_mixed(mixed_utilities, tmp_path):
    problem = AAProblem(mixed_utilities, n_servers=3, capacity=10.0)
    path = tmp_path / "p.json"
    save_problem(problem, path)
    loaded = load_problem(path)
    assert loaded.n_servers == 3
    assert loaded.capacity == 10.0
    xs = np.linspace(0, 10, 21)
    for orig, new in zip(problem.utilities.functions(), loaded.utilities.functions()):
        assert np.allclose(orig.value(xs), new.value(xs))


def test_problem_roundtrip_quadspline_batch(tmp_path):
    batch = QuadSplineBatch([1.0, 2.0], [0.5, 1.5], 100.0)
    problem = AAProblem(batch, n_servers=2, capacity=100.0)
    path = tmp_path / "q.json"
    save_problem(problem, path)
    loaded = load_problem(path)
    xs = np.linspace(0, 100, 11)
    for orig, new in zip(batch.functions(), loaded.utilities.functions()):
        assert np.allclose(orig.value(xs), new.value(xs))


def test_problem_dict_is_json_serializable(small_problem):
    text = json.dumps(problem_to_dict(small_problem))
    assert "aart-problem/1" in text


def test_problem_rejects_wrong_format():
    with pytest.raises(ValueError, match="aart-problem"):
        problem_from_dict({"format": "something-else"})


def test_utility_unknown_type_rejected():
    data = {
        "format": "aart-problem/1",
        "n_servers": 1,
        "capacity": 1.0,
        "utilities": [{"type": "mystery"}],
    }
    with pytest.raises(ValueError, match="unknown utility type"):
        problem_from_dict(data)


def test_utility_missing_type_rejected():
    data = {
        "format": "aart-problem/1",
        "n_servers": 1,
        "capacity": 1.0,
        "utilities": [{"slope": 1.0}],
    }
    with pytest.raises(ValueError, match="missing 'type'"):
        problem_from_dict(data)


def test_assignment_roundtrip(tmp_path):
    a = Assignment(servers=[0, 1, 0], allocations=[1.5, 2.0, 0.0])
    path = tmp_path / "a.json"
    save_assignment(a, path)
    b = load_assignment(path)
    assert np.array_equal(a.servers, b.servers)
    assert np.allclose(a.allocations, b.allocations)


def test_assignment_rejects_wrong_format():
    with pytest.raises(ValueError, match="aart-assignment"):
        assignment_from_dict({"format": "nope", "servers": [], "allocations": []})


# -- scalar utility codec -----------------------------------------------------


def test_utility_codec_roundtrip(mixed_utilities):
    xs = np.linspace(0, 10, 21)
    for f in mixed_utilities:
        back = utility_from_dict(json.loads(json.dumps(utility_to_dict(f))))
        assert np.allclose(back.value(xs), f.value(xs))


# -- online scheduler live state ----------------------------------------------


def _churned_scheduler(utilities, n_servers=3, migration_cost=0.05):
    s = OnlineScheduler(n_servers, CAP, migration_cost=migration_cost)
    for k, f in enumerate(utilities):
        s.add_thread(f"t{k}", f)
    for k in range(0, len(utilities), 3):
        s.remove_thread(f"t{k}")
    s.rebalance()
    return s


def test_scheduler_state_roundtrip_bit_identical():
    from repro.utility.functions import LogUtility, SaturatingUtility

    s = _churned_scheduler(
        [LogUtility(1.0 + k, 1.0, CAP) for k in range(4)]
        + [SaturatingUtility(2.0, 1.0 + k, CAP) for k in range(3)]
    )
    d = scheduler_state_to_dict(s)
    restored = scheduler_state_from_dict(json.loads(json.dumps(d)))
    assert scheduler_state_to_dict(restored) == d
    assert restored.thread_ids == s.thread_ids
    assert restored.total_migrations == s.total_migrations
    a, b = s.assignment(), restored.assignment()
    assert np.array_equal(a.servers, b.servers)
    assert np.array_equal(a.allocations, b.allocations)
    assert restored.total_utility() == s.total_utility()


def test_scheduler_state_rejects_wrong_format():
    with pytest.raises(ValueError, match="aart-scheduler"):
        scheduler_state_from_dict({"format": "aart-problem/1"})


def test_scheduler_state_empty_roundtrip():
    s = OnlineScheduler(2, CAP)
    restored = scheduler_state_from_dict(scheduler_state_to_dict(s))
    assert restored.thread_ids == []
    assert restored.n_servers == 2
    assert restored.capacity == CAP


@settings(max_examples=25, deadline=None)
@given(utility_lists(min_size=1, max_size=6), st.integers(min_value=1, max_value=3))
def test_scheduler_state_roundtrip_hypothesis(utilities, n_servers):
    """Any churned scheduler's state survives a JSON round trip bit-identically."""
    s = OnlineScheduler(n_servers, CAP)
    for k, f in enumerate(utilities):
        s.add_thread(f"t{k}", f)
    if len(utilities) > 1:
        s.remove_thread("t0")
    d = scheduler_state_to_dict(s)
    restored = scheduler_state_from_dict(json.loads(json.dumps(d)))
    assert scheduler_state_to_dict(restored) == d
    a, b = s.assignment(), restored.assignment()
    assert np.array_equal(a.servers, b.servers)
    assert np.array_equal(a.allocations, b.allocations)


def test_roundtrip_preserves_solution_value(small_problem, tmp_path):
    from repro.core.solve import solve

    sol = solve(small_problem)
    p_path, a_path = tmp_path / "p.json", tmp_path / "a.json"
    save_problem(small_problem, p_path)
    save_assignment(sol.assignment, a_path)
    problem2 = load_problem(p_path)
    assignment2 = load_assignment(a_path)
    assignment2.validate(problem2)
    assert assignment2.total_utility(problem2) == pytest.approx(
        sol.total_utility, rel=1e-12
    )
