"""Theorem IV.1: PARTITION ⇄ AA reduction, verified in both directions."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardness.partition import (
    aa_decides_partition,
    has_partition_dp,
    partition_to_aa,
)


def _brute_force_partition(values) -> bool:
    total = sum(values)
    if total % 2:
        return False
    half = total // 2
    n = len(values)
    return any(
        sum(values[i] for i in combo) == half
        for r in range(n + 1)
        for combo in itertools.combinations(range(n), r)
    )


def test_dp_matches_brute_force_exhaustive_small():
    for n in (1, 2, 3, 4):
        for values in itertools.product(range(1, 5), repeat=n):
            arr = np.array(values, dtype=np.int64)
            assert has_partition_dp(arr) == _brute_force_partition(values), values


def test_dp_classic_yes_instance():
    assert has_partition_dp(np.array([3, 1, 1, 2, 2, 1]))


def test_dp_classic_no_instance():
    assert not has_partition_dp(np.array([2, 2, 3]))


def test_dp_odd_total_is_no():
    assert not has_partition_dp(np.array([1, 1, 1]))


def test_dp_rejects_nonintegers():
    with pytest.raises(ValueError):
        has_partition_dp(np.array([1.5, 2.5]))


def test_dp_rejects_nonpositive():
    with pytest.raises(ValueError):
        has_partition_dp(np.array([1, 0]))


def test_dp_rejects_empty():
    with pytest.raises(ValueError):
        has_partition_dp(np.array([], dtype=np.int64))


def test_reduction_builds_capped_linear_gadgets():
    p = partition_to_aa([2, 3, 5])
    assert p.n_servers == 2
    assert p.capacity == pytest.approx(5.0)
    # f_i(x) = min(x, c_i) on [0, C].
    assert p.utilities.value(np.array([2.0, 5.0, 5.0])) == pytest.approx([2.0, 3.0, 5.0])


def test_reduction_rejects_bad_values():
    with pytest.raises(ValueError):
        partition_to_aa([])
    with pytest.raises(ValueError):
        partition_to_aa([1, -2])


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=1, max_value=8), min_size=2, max_size=7))
def test_reduction_decides_partition_correctly(values):
    """The iff of Theorem IV.1 on random instances (exact AA solver)."""
    arr = np.array(values, dtype=np.int64)
    assert aa_decides_partition(arr) == has_partition_dp(arr)


def test_yes_instance_reaches_full_utility():
    values = [1, 1, 2]
    assert aa_decides_partition(values)


def test_no_instance_falls_short():
    values = [2, 2, 3]  # total 7, odd-ish split impossible
    assert not aa_decides_partition(values)


def test_element_larger_than_half_total():
    # One huge element: never partitionable; breakpoint clamps to C.
    values = [10, 1, 1]
    assert not has_partition_dp(np.array(values))
    assert not aa_decides_partition(values)
