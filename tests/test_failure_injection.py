"""Failure injection: malformed inputs must fail loudly, never corrupt state.

Production-quality libraries reject garbage at the boundary.  These tests
throw NaNs, infinities, wrong shapes and hostile configurations at every
public entry point and assert clean ``ValueError``/``TypeError`` behaviour
— or graceful degenerate handling where the input is merely extreme.
"""

import numpy as np
import pytest

from repro.allocation.waterfill import water_fill
from repro.core.problem import AAProblem, Assignment
from repro.core.solve import solve
from repro.utility.batch import GenericBatch, QuadSplineBatch
from repro.utility.functions import LinearUtility, LogUtility, PiecewiseLinearUtility

CAP = 10.0


# -- hostile utility parameters ------------------------------------------------


def test_nan_parameters_rejected():
    with pytest.raises(ValueError):
        LinearUtility(np.nan, CAP)
    with pytest.raises(ValueError):
        LogUtility(np.nan, 1.0, CAP)
    with pytest.raises(ValueError):
        QuadSplineBatch([np.nan], [0.0], CAP)


def test_infinite_cap_rejected():
    with pytest.raises(ValueError):
        LinearUtility(1.0, np.inf)


def test_pwl_nan_knots_rejected():
    with pytest.raises(ValueError):
        PiecewiseLinearUtility([0.0, np.nan], [0.0, 1.0])


# -- hostile problem construction ------------------------------------------------


def test_problem_with_nan_capacity():
    with pytest.raises(ValueError):
        AAProblem([LinearUtility(1.0, CAP)], 1, np.nan)


def test_problem_with_huge_thread_count_smoke():
    """Large n must work, not hang: 2000 threads solve in well under a second
    of algorithmic work (vectorized batch path)."""
    rng = np.random.default_rng(0)
    v = rng.uniform(0.5, 2.0, 2000)
    batch = QuadSplineBatch(v, v * rng.uniform(0, 1, 2000), CAP)
    sol = solve(AAProblem(batch, 16, CAP))
    assert sol.meets_guarantee


def test_assignment_with_nan_allocation_rejected():
    p = AAProblem([LinearUtility(1.0, CAP)], 1, CAP)
    a = Assignment(servers=[0], allocations=[np.nan])
    with pytest.raises(ValueError):
        a.validate(p)


# -- hostile waterfill inputs ------------------------------------------------------


def test_waterfill_nan_budget():
    with pytest.raises(ValueError):
        water_fill([LinearUtility(1.0, CAP)], np.nan)


def test_waterfill_misbehaving_custom_utility_fails_loudly():
    """A utility whose inverse_derivative never shrinks with price breaks
    the bisection's contract; the solver must raise, not emit an
    infeasible allocation silently."""

    class Liar(LinearUtility):
        def inverse_derivative(self, lam):
            return self.cap  # ignores the price entirely

    with pytest.raises(RuntimeError, match="bracket"):
        water_fill([Liar(1.0, CAP), LinearUtility(2.0, CAP)], 5.0)


# -- degenerate but legal extremes ---------------------------------------------------


def test_single_thread_single_server():
    sol = solve(AAProblem([LogUtility(1.0, 1.0, CAP)], 1, CAP))
    assert sol.assignment.allocations[0] == pytest.approx(CAP)
    assert sol.certified_ratio == pytest.approx(1.0)


def test_tiny_capacity():
    sol = solve(AAProblem([LinearUtility(1.0, 1e-12)], 1, 1e-12))
    sol.assignment.validate(AAProblem([LinearUtility(1.0, 1e-12)], 1, 1e-12))


def test_extreme_utility_scale_spread():
    """12 orders of magnitude between thread values must not break the
    bisection or the guarantee."""
    fns = [LinearUtility(1e-6, CAP), LinearUtility(1e6, CAP)]
    sol = solve(AAProblem(fns, 1, CAP))
    assert sol.meets_guarantee
    # All resource to the huge-slope thread.
    assert sol.assignment.allocations[1] == pytest.approx(CAP)


def test_many_servers_few_threads():
    sol = solve(AAProblem([LogUtility(1.0, 1.0, CAP)] * 2, 50, CAP))
    assert sol.meets_guarantee
    assert np.all(sol.assignment.allocations == pytest.approx(CAP))


def test_generic_batch_mixed_with_zero_cap_threads():
    fns = [LinearUtility(1.0, 0.0), LogUtility(1.0, 1.0, CAP)]
    sol = solve(AAProblem(GenericBatch(fns), 2, CAP))
    assert sol.assignment.allocations[0] == pytest.approx(0.0)
    assert sol.meets_guarantee
