"""Online scheduler: churn, rebalance, migration accounting, adaptation."""

import numpy as np
import pytest

from repro.extensions.online import AdaptiveScheduler, OnlineScheduler
from repro.utility.functions import LogUtility, SaturatingUtility

CAP = 10.0


def _util(c=1.0):
    return LogUtility(c, 1.0, CAP)


def test_construction_validation():
    with pytest.raises(ValueError):
        OnlineScheduler(0, CAP)
    with pytest.raises(ValueError):
        OnlineScheduler(2, 0.0)
    with pytest.raises(ValueError):
        OnlineScheduler(2, CAP, migration_cost=-1.0)


def test_add_places_on_some_server():
    s = OnlineScheduler(3, CAP)
    j = s.add_thread("a", _util())
    assert 0 <= j < 3
    assert s.thread_ids == ["a"]


def test_added_thread_gets_resource():
    s = OnlineScheduler(2, CAP)
    s.add_thread("a", _util())
    a = s.assignment()
    assert a.allocations[0] == pytest.approx(CAP)


def test_duplicate_id_rejected():
    s = OnlineScheduler(2, CAP)
    s.add_thread("a", _util())
    with pytest.raises(ValueError):
        s.add_thread("a", _util())


def test_cap_above_capacity_rejected():
    s = OnlineScheduler(2, CAP)
    with pytest.raises(ValueError):
        s.add_thread("big", LogUtility(1.0, 1.0, CAP * 2))


def test_arrivals_spread_over_servers():
    s = OnlineScheduler(2, CAP)
    for k in range(4):
        s.add_thread(f"t{k}", _util(1.0))
    servers = s.assignment().servers
    assert set(servers.tolist()) == {0, 1}


def test_remove_returns_resource_to_residents():
    s = OnlineScheduler(1, CAP)
    s.add_thread("a", _util(1.0))
    s.add_thread("b", _util(1.0))
    s.remove_thread("a")
    a = s.assignment()
    assert a.allocations[0] == pytest.approx(CAP)


def test_remove_unknown_raises():
    s = OnlineScheduler(1, CAP)
    with pytest.raises(KeyError):
        s.remove_thread("ghost")


def test_total_utility_empty():
    assert OnlineScheduler(2, CAP).total_utility() == 0.0


def test_rebalance_empty_noop():
    s = OnlineScheduler(2, CAP)
    rep = s.rebalance()
    assert rep.migrations == 0
    assert rep.net_gain == 0.0


def test_rebalance_never_reduces_net_value():
    rng = np.random.default_rng(0)
    s = OnlineScheduler(3, CAP, migration_cost=0.05)
    for k in range(9):
        s.add_thread(f"t{k}", _util(float(rng.uniform(0.5, 4.0))))
    before = s.total_utility()
    rep = s.rebalance()
    assert s.total_utility() >= before - 1e-9
    assert rep.utility_after >= rep.utility_before - 1e-9


def test_rebalance_declines_when_migration_too_expensive():
    s = OnlineScheduler(2, CAP, migration_cost=1e9)
    for k in range(6):
        s.add_thread(f"t{k}", _util(1.0 + k))
    before_servers = s.assignment().servers.copy()
    rep = s.rebalance()
    assert rep.migrations == 0
    assert np.array_equal(s.assignment().servers, before_servers)


def test_migration_counter_accumulates():
    s = OnlineScheduler(2, CAP)
    for k in range(6):
        s.add_thread(f"t{k}", _util(1.0 + k))
    s.rebalance()
    assert s.total_migrations >= 0  # counted, never negative


def test_churn_sequence_keeps_feasibility():
    rng = np.random.default_rng(1)
    s = OnlineScheduler(3, CAP, migration_cost=0.01)
    alive = []
    for step in range(30):
        if alive and rng.uniform() < 0.4:
            victim = alive.pop(int(rng.integers(len(alive))))
            s.remove_thread(victim)
        else:
            tid = f"t{step}"
            s.add_thread(tid, _util(float(rng.uniform(0.5, 3.0))))
            alive.append(tid)
        if step % 7 == 0:
            s.rebalance()
        a = s.assignment()
        if a.n_threads:
            loads = np.bincount(a.servers, weights=a.allocations, minlength=3)
            assert np.all(loads <= CAP + 1e-6)


# -- migration accounting (fixed seed suite) ---------------------------------


@pytest.mark.parametrize("seed", [3, 11, 42, 2024])
def test_rebalance_migrations_match_hand_count(seed):
    """``RebalanceReport.migrations`` equals the hand-counted server changes."""
    rng = np.random.default_rng(seed)
    s = OnlineScheduler(4, CAP)
    for k in range(14):
        s.add_thread(f"t{k}", _util(float(rng.uniform(0.3, 4.0))))
    for k in range(0, 14, 3):
        s.remove_thread(f"t{k}")
    ids = s.thread_ids
    before = {t: s.placement_of(t)[0] for t in ids}
    rep = s.rebalance()
    after = {t: s.placement_of(t)[0] for t in ids}
    hand_count = sum(1 for t in ids if before[t] != after[t])
    assert rep.migrations == hand_count
    assert s.total_migrations == hand_count


@pytest.mark.parametrize("seed", [0, 1, 5, 9, 123])
def test_rebalance_utility_never_decreases(seed):
    rng = np.random.default_rng(seed)
    s = OnlineScheduler(3, CAP, migration_cost=0.02)
    for k in range(10):
        s.add_thread(f"t{k}", _util(float(rng.uniform(0.5, 3.0))))
    rep = s.rebalance()
    assert rep.utility_after >= rep.utility_before - 1e-9
    assert s.total_utility() == pytest.approx(max(rep.utility_after, rep.utility_before))


def test_declined_rebalance_reports_zero_migrations():
    s = OnlineScheduler(2, CAP, migration_cost=1e9)
    for k in range(6):
        s.add_thread(f"t{k}", _util(1.0 + k))
    before = {t: s.placement_of(t)[0] for t in s.thread_ids}
    rep = s.rebalance()
    assert rep.migrations == 0
    assert s.total_migrations == 0
    assert {t: s.placement_of(t)[0] for t in s.thread_ids} == before


def test_max_migrations_budget_declines_wholesale():
    s = OnlineScheduler(2, CAP)
    for k in range(4):
        s.add_thread(f"t{k}", _util())
    # Strand both survivors on one server, then ask for a budget-0 replan.
    victims = [t for t in s.thread_ids if s.placement_of(t)[0] == 1]
    for t in victims:
        s.remove_thread(t)
    before = {t: s.placement_of(t)[0] for t in s.thread_ids}
    rep = s.rebalance(max_migrations=0)
    assert rep.migrations == 0
    assert {t: s.placement_of(t)[0] for t in s.thread_ids} == before
    # With the budget lifted the same replan applies and improves utility.
    rep = s.rebalance(max_migrations=1)
    assert rep.migrations == 1
    assert rep.utility_after > rep.utility_before


# -- service primitives -------------------------------------------------------


def test_placement_gain_matches_add_thread_choice():
    rng = np.random.default_rng(6)
    s = OnlineScheduler(3, CAP)
    for k in range(7):
        f = _util(float(rng.uniform(0.5, 3.0)))
        server_predicted, gain = s.placement_gain(f)
        assert gain >= -1e-9
        server_actual = s.add_thread(f"t{k}", f)
        assert server_actual == server_predicted


def test_placement_gain_does_not_mutate():
    s = OnlineScheduler(2, CAP)
    s.add_thread("a", _util())
    before = s.assignment()
    s.placement_gain(_util(2.0))
    after = s.assignment()
    assert np.array_equal(before.servers, after.servers)
    assert np.array_equal(before.allocations, after.allocations)
    assert s.thread_ids == ["a"]


def test_placement_gain_rejects_oversized_cap():
    s = OnlineScheduler(2, CAP)
    with pytest.raises(ValueError):
        s.placement_gain(LogUtility(1.0, 1.0, CAP * 2))


def test_restore_thread_exact_position():
    s = OnlineScheduler(3, CAP)
    s.restore_thread("a", _util(), server=2, allocation=3.25)
    assert s.placement_of("a") == (2, 3.25)
    a = s.assignment()
    assert a.servers.tolist() == [2]
    assert a.allocations.tolist() == [3.25]


def test_restore_thread_validation():
    s = OnlineScheduler(2, CAP)
    s.restore_thread("a", _util(), server=0, allocation=1.0)
    with pytest.raises(ValueError):
        s.restore_thread("a", _util(), server=0, allocation=1.0)  # duplicate
    with pytest.raises(ValueError):
        s.restore_thread("b", _util(), server=5, allocation=1.0)  # bad server
    with pytest.raises(ValueError):
        s.restore_thread("c", _util(), server=0, allocation=CAP * 2)  # too much


def test_update_capacity_refills():
    s = OnlineScheduler(1, CAP)
    s.add_thread("a", _util())
    s.add_thread("b", _util())
    assert sorted(s.assignment().allocations.tolist()) == pytest.approx([5.0, 5.0])
    # Doubling C re-fills both residents up to their domain caps.
    s.update_capacity(2 * CAP)
    assert s.capacity == 2 * CAP
    assert sorted(s.assignment().allocations.tolist()) == pytest.approx([CAP, CAP])


def test_update_capacity_rejects_below_resident_cap():
    s = OnlineScheduler(1, CAP)
    s.add_thread("a", LogUtility(1.0, 1.0, CAP))  # cap = CAP
    with pytest.raises(ValueError):
        s.update_capacity(CAP / 2)
    with pytest.raises(ValueError):
        s.update_capacity(0.0)


def test_placement_of_unknown_raises():
    s = OnlineScheduler(1, CAP)
    with pytest.raises(KeyError):
        s.placement_of("ghost")


# -- AdaptiveScheduler -------------------------------------------------------


def test_adaptive_register_and_observe():
    ad = AdaptiveScheduler(2, CAP)
    ad.register("x")
    ad.observe("x", 5.0, 2.0)
    with pytest.raises(KeyError):
        ad.observe("ghost", 1.0, 1.0)


def test_adaptive_learns_and_improves():
    rng = np.random.default_rng(2)
    truths = {f"s{k}": SaturatingUtility(1.0 + 2 * k, 1.0, CAP) for k in range(4)}
    ad = AdaptiveScheduler(2, CAP, n_knots=10)
    for tid in truths:
        ad.register(tid)
    for _ in range(50):
        for tid, f in truths.items():
            x = float(rng.uniform(0, CAP))
            ad.observe(tid, x, float(f.value(x)) + float(rng.normal(0, 0.02)))
    ad.replan_from_measurements()
    # Evaluate the *true* value of the learned plan vs a uniform split.
    a = ad.assignment()
    ids = ad.thread_ids
    learned = sum(
        float(truths[t].value(c)) for t, c in zip(ids, a.allocations)
    )
    uniform = sum(float(truths[t].value(CAP / 2)) for t in ids)
    assert learned >= uniform * 0.95


def test_adaptive_replan_without_data_keeps_prior():
    ad = AdaptiveScheduler(2, CAP)
    ad.register("a")
    rep = ad.replan_from_measurements()
    assert rep.utility_after >= 0.0
