"""Max-min fairness: progressive filling and the efficiency trade-off."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.problem import AAProblem
from repro.core.solve import solve
from repro.extensions.fairness import (
    fairness_report,
    maxmin_fair,
    progressive_fill,
)
from repro.utility.batch import GenericBatch
from repro.utility.functions import CappedLinearUtility, LinearUtility, LogUtility

from tests.conftest import CAP, aa_problems


def test_progressive_fill_identical_threads_split_evenly():
    batch = GenericBatch([LogUtility(1.0, 1.0, CAP)] * 4)
    alloc = progressive_fill(batch, np.arange(4), CAP)
    assert alloc == pytest.approx(np.full(4, CAP / 4), rel=1e-6)


def test_progressive_fill_equalizes_utilities():
    fns = [LinearUtility(1.0, CAP), LinearUtility(4.0, CAP)]
    batch = GenericBatch(fns)
    alloc = progressive_fill(batch, np.arange(2), CAP)
    u = [float(f.value(a)) for f, a in zip(fns, alloc)]
    assert u[0] == pytest.approx(u[1], rel=1e-5)
    assert float(np.sum(alloc)) == pytest.approx(CAP, rel=1e-6)


def test_progressive_fill_saturated_thread_keeps_cap():
    fns = [CappedLinearUtility(1.0, 1.0, CAP), LinearUtility(1.0, CAP)]
    alloc = progressive_fill(GenericBatch(fns), np.arange(2), CAP)
    # Thread 0 peaks at utility 1 using 1 unit; the rest goes to thread 1.
    assert alloc[0] == pytest.approx(CAP, rel=1e-5) or alloc[1] == pytest.approx(9.0, rel=1e-3)
    assert float(np.sum(alloc)) == pytest.approx(CAP, rel=1e-6)


def test_progressive_fill_empty():
    batch = GenericBatch([LinearUtility(1.0, CAP)])
    assert progressive_fill(batch, np.array([], dtype=int), CAP).size == 0


def test_maxmin_fair_is_feasible():
    p = AAProblem([LogUtility(1.0 + i, 1.0, CAP) for i in range(7)], 3, CAP)
    a = maxmin_fair(p)
    a.validate(p)


def test_maxmin_raises_the_floor():
    """A weak thread gets more under fairness than under utility max."""
    fns = [LinearUtility(0.05, CAP), LinearUtility(5.0, CAP)]
    p = AAProblem(fns, 1, CAP)
    util = solve(p).assignment
    fair = maxmin_fair(p)
    weak_util = float(fns[0].value(util.allocations[0]))
    weak_fair = float(fns[0].value(fair.allocations[0]))
    assert weak_fair > weak_util


def test_report_fields_consistent():
    p = AAProblem([LinearUtility(0.1, CAP), LinearUtility(3.0, CAP)], 1, CAP)
    rep = fairness_report(p)
    assert rep.fair_min >= rep.utilitarian_min - 1e-9
    assert rep.utilitarian_total >= rep.fair_total - 1e-9
    assert 0.0 <= rep.efficiency_cost <= 1.0


@settings(max_examples=20, deadline=None)
@given(aa_problems(max_threads=6, max_servers=3))
def test_fairness_never_beats_utilitarian_total(problem):
    rep = fairness_report(problem)
    assert rep.fair_total <= rep.utilitarian_total + 1e-6 * (
        1 + abs(rep.utilitarian_total)
    )


@settings(max_examples=20, deadline=None)
@given(aa_problems(max_threads=6, max_servers=3))
def test_fair_assignment_always_feasible(problem):
    maxmin_fair(problem).validate(problem)
