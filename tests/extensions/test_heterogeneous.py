"""Heterogeneous-capacity extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extensions.heterogeneous import (
    HeterogeneousProblem,
    algorithm2_hetero,
    super_optimal_hetero,
)
from repro.utility.functions import LogUtility

from tests.conftest import utility_lists

CAP = 10.0


def _problem(caps=(10.0, 5.0), n=5):
    fns = [LogUtility(1.0 + i, 1.0, min(caps and max(caps), CAP)) for i in range(n)]
    return HeterogeneousProblem(fns, capacities=list(caps))


def test_basic_properties():
    p = _problem((10.0, 5.0), 4)
    assert p.n_servers == 2
    assert p.n_threads == 4
    assert p.pool == 15.0


def test_rejects_bad_capacities():
    fns = [LogUtility(1.0, 1.0, 5.0)]
    with pytest.raises(ValueError):
        HeterogeneousProblem(fns, capacities=[])
    with pytest.raises(ValueError):
        HeterogeneousProblem(fns, capacities=[-1.0])
    with pytest.raises(ValueError):
        HeterogeneousProblem(fns, capacities=[[1.0, 2.0]])


def test_rejects_cap_above_largest_server():
    fns = [LogUtility(1.0, 1.0, 20.0)]
    with pytest.raises(ValueError, match="largest server"):
        HeterogeneousProblem(fns, capacities=[10.0, 5.0])


def test_super_optimal_uses_pool():
    p = _problem((10.0, 5.0), 5)
    so = super_optimal_hetero(p)
    assert float(np.sum(so.allocations)) == pytest.approx(15.0, rel=1e-9)


def test_solution_feasible_per_server():
    p = _problem((10.0, 6.0, 3.0), 8)
    sol = algorithm2_hetero(p)
    loads = np.bincount(sol.servers, weights=sol.allocations, minlength=3)
    assert np.all(loads <= p.capacities + 1e-9)
    assert np.all(sol.allocations >= -1e-12)


def test_equal_capacities_match_homogeneous_solver():
    from repro.core.problem import AAProblem
    from repro.core.solve import solve

    fns = [LogUtility(1.0 + i, 1.0, CAP) for i in range(6)]
    hetero = HeterogeneousProblem(fns, capacities=[CAP, CAP])
    homo = AAProblem(fns, 2, CAP)
    a = algorithm2_hetero(hetero)
    b = solve(homo)
    assert a.total_utility == pytest.approx(b.total_utility, rel=1e-9)


def test_certified_ratio_reasonable():
    p = _problem((10.0, 7.0, 2.0), 9)
    sol = algorithm2_hetero(p)
    assert 0.7 <= sol.certified_ratio <= 1.0 + 1e-9


def test_reclaim_flag_improves_or_matches():
    p = _problem((10.0, 4.0), 7)
    raw = algorithm2_hetero(p, reclaim=False)
    rec = algorithm2_hetero(p, reclaim=True)
    assert rec.total_utility >= raw.total_utility - 1e-9


@settings(max_examples=25, deadline=None)
@given(
    utility_lists(1, 6, cap=5.0),
    st.lists(st.floats(min_value=5.0, max_value=20.0), min_size=1, max_size=4),
)
def test_random_instances_feasible_and_bounded(fns, caps):
    p = HeterogeneousProblem(fns, capacities=caps)
    sol = algorithm2_hetero(p)
    loads = np.bincount(sol.servers, weights=sol.allocations, minlength=p.n_servers)
    assert np.all(loads <= p.capacities + 1e-6)
    assert sol.total_utility <= sol.upper_bound + 1e-6 * (1 + sol.upper_bound)
