"""Priority-weighted solving."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.problem import AAProblem
from repro.core.solve import solve
from repro.extensions.weighted import WeightedUtility, solve_weighted
from repro.utility.functions import LinearUtility, LogUtility

CAP = 10.0


def test_weighted_utility_scales_values():
    f = LogUtility(2.0, 1.0, CAP)
    g = WeightedUtility(f, 3.0)
    xs = np.linspace(0, CAP, 9)
    assert np.allclose(g.value(xs), 3.0 * np.asarray(f.value(xs)))
    assert np.allclose(g.derivative(xs), 3.0 * np.asarray(f.derivative(xs)))


def test_weighted_inverse_derivative_consistent():
    f = LogUtility(2.0, 1.0, CAP)
    g = WeightedUtility(f, 4.0)
    lam = 1.5
    x = g.inverse_derivative(lam)
    assert g.derivative(x) == pytest.approx(lam, rel=1e-6)


def test_weighted_utility_still_concave():
    WeightedUtility(LogUtility(1.0, 1.0, CAP), 7.0).validate()


def test_weight_validation():
    f = LinearUtility(1.0, CAP)
    with pytest.raises(ValueError):
        WeightedUtility(f, 0.0)
    with pytest.raises(ValueError):
        WeightedUtility(f, -1.0)
    with pytest.raises(ValueError):
        WeightedUtility(f, np.inf)


def test_uniform_weights_match_unweighted():
    fns = [LogUtility(1.0 + i, 1.0, CAP) for i in range(5)]
    plain = solve(AAProblem(fns, 2, CAP))
    weighted = solve_weighted(fns, np.ones(5), 2, CAP)
    assert weighted.weighted_utility == pytest.approx(plain.total_utility, rel=1e-9)
    assert weighted.raw_total == pytest.approx(plain.total_utility, rel=1e-9)


def test_heavy_weight_attracts_resource():
    fns = [LogUtility(1.0, 1.0, CAP), LogUtility(1.0, 1.0, CAP)]
    even = solve_weighted(fns, [1.0, 1.0], 1, CAP)
    skew = solve_weighted(fns, [1.0, 10.0], 1, CAP)
    assert skew.assignment.allocations[1] > even.assignment.allocations[1]


def test_raw_utilities_reported_unweighted():
    fns = [LinearUtility(1.0, CAP)]
    ws = solve_weighted(fns, [5.0], 1, CAP)
    assert ws.raw_utilities[0] == pytest.approx(CAP)  # f(10) = 10, not 50
    assert ws.weighted_utility == pytest.approx(5 * CAP)


def test_weight_count_mismatch():
    with pytest.raises(ValueError):
        solve_weighted([LinearUtility(1.0, CAP)], [1.0, 2.0], 1, CAP)


@settings(max_examples=20, deadline=None)
@given(st.floats(min_value=0.1, max_value=10.0))
def test_global_rescaling_keeps_allocations(scale):
    """Multiplying every weight by a constant changes nothing physical."""
    fns = [LogUtility(1.0 + i, 1.0, CAP) for i in range(4)]
    base = solve_weighted(fns, np.ones(4), 2, CAP)
    scaled = solve_weighted(fns, np.full(4, scale), 2, CAP)
    assert np.allclose(
        base.assignment.allocations, scaled.assignment.allocations, atol=1e-6
    )
    assert scaled.weighted_utility == pytest.approx(
        scale * base.weighted_utility, rel=1e-6
    )
