"""Multi-resource (Leontief) extension via dominant-share scalarization."""

import numpy as np
import pytest

from repro.extensions.multiresource import MultiResourceProblem, solve_multiresource
from repro.utility.functions import LogUtility, PowerUtility


def _problem(n=4, m=2):
    utils = [PowerUtility(1.0 + i, 0.7, cap=100.0) for i in range(n)]
    demands = np.tile([[1.0, 0.5]], (n, 1))
    demands[1:, 1] = np.linspace(0.2, 2.0, n - 1) if n > 1 else demands[1:, 1]
    return MultiResourceProblem(utils, demands, n_servers=m, capacities=[50.0, 40.0])


def test_shapes_and_validation():
    p = _problem(4, 2)
    assert p.n_threads == 4
    assert p.n_resources == 2


def test_rejects_bad_inputs():
    utils = [LogUtility(1.0, 1.0, 10.0)]
    with pytest.raises(ValueError):
        MultiResourceProblem(utils, np.zeros((1, 2)), 1, [1.0, 1.0])  # zero demand
    with pytest.raises(ValueError):
        MultiResourceProblem(utils, np.ones((2, 2)), 1, [1.0, 1.0])  # shape
    with pytest.raises(ValueError):
        MultiResourceProblem(utils, np.ones((1, 2)), 1, [1.0])  # capacities
    with pytest.raises(ValueError):
        MultiResourceProblem(utils, -np.ones((1, 2)), 1, [1.0, 1.0])
    with pytest.raises(ValueError):
        MultiResourceProblem(utils, np.ones((1, 2)), 0, [1.0, 1.0])


def test_dominant_share_formula():
    utils = [LogUtility(1.0, 1.0, 10.0)]
    p = MultiResourceProblem(utils, [[2.0, 1.0]], 1, [10.0, 10.0])
    assert p.dominant_share_per_unit()[0] == pytest.approx(0.2)


def test_scalar_problem_capacity_one():
    p = _problem()
    scalar = p.to_scalar_aa()
    assert scalar.capacity == 1.0
    assert np.all(scalar.utilities.caps <= 1.0 + 1e-12)


def test_solution_respects_every_resource():
    p = _problem(6, 2)
    sol = solve_multiresource(p)
    assert np.all(sol.usage <= p.capacities * (1 + 1e-9))
    report = sol.utilization_report()
    assert np.all((report >= -1e-12) & (report <= 1 + 1e-9))


def test_task_units_consistent_with_usage():
    p = _problem(5, 2)
    sol = solve_multiresource(p)
    total_units = sol.task_units
    recomputed = np.zeros_like(sol.usage)
    for j in range(p.n_servers):
        members = sol.scalar.assignment.servers == j
        recomputed[j] = (total_units[members, None] * p.demands[members]).sum(axis=0)
    assert recomputed == pytest.approx(sol.usage)


def test_dominant_resource_binds_when_uniform_demands():
    """Threads demanding only resource 0 should be able to use ~all of it."""
    utils = [PowerUtility(1.0, 0.8, cap=100.0) for _ in range(4)]
    demands = np.tile([[1.0, 0.0]], (4, 1))
    p = MultiResourceProblem(utils, demands, n_servers=2, capacities=[10.0, 99.0])
    sol = solve_multiresource(p)
    assert sol.usage[:, 0].sum() == pytest.approx(20.0, rel=1e-6)
    assert sol.usage[:, 1].sum() == pytest.approx(0.0)


def test_total_utility_counts_scalarized_values():
    p = _problem(4, 2)
    sol = solve_multiresource(p)
    direct = sum(
        float(f.value(u))
        for f, u in zip(p.utilities.functions(), sol.task_units)
    )
    assert sol.total_utility == pytest.approx(direct, rel=1e-6)


# -- the price-discovery backend --------------------------------------------


def _market_problem(n=40, R=3, m=4, seed=0):
    rng = np.random.default_rng(seed)
    utils = [
        PowerUtility(float(c), 0.5, cap=float(cap))
        for c, cap in zip(rng.uniform(1.0, 4.0, n), rng.uniform(2.0, 10.0, n))
    ]
    demands = rng.uniform(0.1, 1.0, (n, R))
    caps = rng.uniform(3.0, 9.0, R)
    return MultiResourceProblem(utils, demands, n_servers=m, capacities=caps)


def test_prices_backend_feasible_and_reports_pricing():
    p = _market_problem()
    sol = solve_multiresource(p, backend="prices")
    assert np.all(sol.usage <= p.capacities * (1 + 1e-9))
    assert sol.scalar.algorithm == "price_discovery"
    assert sol.pricing is not None
    assert sol.pricing.prices.shape == (p.n_resources,)
    assert np.all(sol.pricing.prices >= 0.0)
    assert sol.pricing.iterations >= 1
    # The default dominant backend carries no market report.
    assert solve_multiresource(p).pricing is None


def test_prices_backend_parity_with_dominant():
    p = _market_problem(seed=3)
    dom = solve_multiresource(p, algorithm="alg2")
    pri = solve_multiresource(p, backend="prices")
    assert pri.total_utility >= dom.total_utility * 0.95


def test_dual_bound_dominates_both_backends():
    for seed in range(3):
        p = _market_problem(seed=seed)
        dom = solve_multiresource(p, algorithm="alg2")
        pri = solve_multiresource(p, backend="prices")
        bound = pri.pricing.dual_bound
        # The Lagrangian dual value upper-bounds the multiresource optimum
        # at ANY nonnegative price vector — convergence only tightens it.
        assert bound >= dom.total_utility - 1e-9
        assert bound >= pri.total_utility - 1e-9


def test_dual_bound_valid_even_far_from_convergence():
    from repro.extensions.multiresource import discover_resource_prices

    p = _market_problem(seed=5)
    crude = discover_resource_prices(p, max_iter=1)
    converged = discover_resource_prices(p)
    best = solve_multiresource(p, algorithm="alg2").total_utility
    assert crude.dual_bound >= best - 1e-9
    assert converged.dual_bound >= best - 1e-9
    assert converged.dual_bound <= crude.dual_bound + 1e-9 or converged.residual <= 1e-4


def test_prices_backend_counters_and_deadline():
    from repro.engine import SolveContext, SolveTimeout
    from repro.observability import PRICE_UPDATE_ITERATIONS

    p = _market_problem()
    ctx = SolveContext()
    solve_multiresource(p, backend="prices", ctx=ctx)
    assert ctx.counters[PRICE_UPDATE_ITERATIONS] >= 1
    with pytest.raises(SolveTimeout):
        solve_multiresource(p, backend="prices", ctx=SolveContext(budget_s=1e-9))


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        solve_multiresource(_problem(), backend="nope")
