"""Local-search refinement: monotonicity, fixability, termination."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.exact import exact_continuous
from repro.core.problem import AAProblem, Assignment
from repro.core.solve import solve
from repro.core.tightness import tightness_instance
from repro.extensions.localsearch import local_search, solve_with_refinement
from repro.utility.functions import LogUtility

from tests.conftest import CAP, aa_problems


def _problem(n=6, m=2):
    return AAProblem([LogUtility(1.0 + i, 1.0, CAP) for i in range(n)], m, CAP)


def test_never_decreases_utility():
    p = _problem(8, 3)
    base = solve(p)
    refined = local_search(p, base.assignment)
    assert refined.total_utility >= base.total_utility - 1e-9


def test_result_is_feasible():
    p = _problem(8, 3)
    refined = solve_with_refinement(p)
    refined.assignment.validate(p)


def test_fixes_the_tightness_instance():
    """Local search repairs Theorem V.17's bad split: 5/6 -> 1.0.

    Moving one capped thread next to the other costs nothing (its server
    mate is flat past 0.5) and frees a whole server for the linear thread.
    """
    p = tightness_instance()
    base = solve(p)
    assert base.total_utility == pytest.approx(2.5)
    refined = local_search(p, base.assignment, use_swaps=True)
    assert refined.total_utility == pytest.approx(3.0)
    assert refined.moves + refined.swaps >= 1


def test_moves_alone_also_fix_tightness():
    p = tightness_instance()
    base = solve(p)
    refined = local_search(p, base.assignment, use_swaps=False)
    assert refined.total_utility == pytest.approx(3.0)
    assert refined.moves >= 1


def test_improvement_accounting():
    p = tightness_instance()
    base = solve(p)
    refined = local_search(p, base.assignment)
    assert refined.improvement == pytest.approx(0.5)
    assert refined.initial_utility == pytest.approx(2.5)


def test_terminates_on_optimal_start():
    p = _problem(4, 2)
    opt = exact_continuous(p)
    refined = local_search(p, opt)
    assert refined.total_utility == pytest.approx(opt.total_utility(p), rel=1e-9)
    assert refined.moves == 0 and refined.swaps == 0
    assert refined.passes == 1


def test_refines_a_bad_start():
    p = _problem(6, 3)
    # Everything dumped on server 0 with nothing allocated.
    bad = Assignment(servers=np.zeros(6, dtype=np.int64), allocations=np.zeros(6))
    refined = local_search(p, bad)
    refined.assignment.validate(p)
    opt = exact_continuous(p).total_utility(p)
    assert refined.total_utility >= 0.99 * opt


def test_rejects_mismatched_start():
    p = _problem(4, 2)
    bad = Assignment(servers=np.zeros(3, dtype=np.int64), allocations=np.zeros(3))
    with pytest.raises(ValueError):
        local_search(p, bad)


@settings(max_examples=15, deadline=None)
@given(aa_problems(max_threads=6, max_servers=3))
def test_refined_close_to_exact(problem):
    refined = solve_with_refinement(problem)
    opt = exact_continuous(problem).total_utility(problem)
    assert refined.total_utility >= 0.98 * opt - 1e-9
