"""Lock-held dataflow: inventory, inversion cycles, blocking, vacuity."""

from pathlib import Path

from repro.checks.base import Project
from repro.checks.lockflow import LockToken
from repro.checks.runner import load_module, run_checks

FIXTURES = Path(__file__).parent / "fixtures"
REPO = Path(__file__).resolve().parents[2]

LOCK_FREE = [
    "repro/core/float_eq.py",
    "repro/core/no_poll.py",
    "repro/experiments/rng_abuse.py",
]


def fixture_project(*rels):
    mods = [load_module(FIXTURES / rel, FIXTURES) for rel in rels]
    return Project(mods)


def test_lock_token_inventory_and_labels():
    flow = fixture_project("repro/service/lock_inversion.py").lockflow()
    tokens = set().union(*flow.tokens.values())
    assert tokens == {
        LockToken("repro.service.lock_inversion.Journal", "_lock"),
        LockToken("repro.service.lock_inversion.Store", "_lock"),
    }
    assert {t.label for t in tokens} == {"Journal._lock", "Store._lock"}


def test_inversion_cycle_reports_both_paths():
    flow = fixture_project("repro/service/lock_inversion.py").lockflow()
    assert len(flow.cycles) == 1
    message = flow.cycles[0].message
    assert "Journal._lock -> Store._lock" in message
    assert "Store._lock -> Journal._lock" in message
    assert "potential deadlock" in message


def test_blocking_event_names_lock_and_call():
    flow = fixture_project("repro/service/send_under_lock.py").lockflow()
    assert len(flow.blocking_events) == 1
    event = flow.blocking_events[0]
    assert "sendall" in event.message
    assert "Notifier._lock" in event.message
    assert flow.cycles == []


def test_lock_free_modules_are_vacuous():
    flow = fixture_project(*LOCK_FREE).lockflow()
    assert flow.tokens == {}
    assert flow.cycles == []
    assert flow.blocking_events == []
    for rel in LOCK_FREE:
        result = run_checks(
            [FIXTURES / rel], select=["AART008", "AART009"], root=FIXTURES
        )
        assert result.findings == []
        assert not result.errors


def test_real_src_tree_is_clean_under_interprocedural_rules():
    result = run_checks(
        [REPO / "src"], select=["AART008", "AART009", "AART010"], root=REPO
    )
    assert not result.errors
    assert result.findings == []  # real issues are fixed or pragma-justified
    assert result.suppressed >= 2  # transport re-solve + provenance keys
