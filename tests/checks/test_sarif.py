"""SARIF reporter: 2.1.0 document shape, coordinates, error surfacing."""

import json
from pathlib import Path

import pytest

from repro.checks.base import all_rules
from repro.checks.runner import CheckResult, run_checks
from repro.checks.sarif import SARIF_SCHEMA_URI, SARIF_VERSION, render_sarif

FIXTURES = Path(__file__).parent / "fixtures"
DIRTY = FIXTURES / "repro/core/float_eq.py"

#: The subset of the SARIF 2.1.0 schema our emitter relies on.  The full
#: OASIS schema is ~300 KB and not vendored; this captures every
#: structural requirement GitHub code scanning enforces on upload.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["$schema", "version", "runs"],
    "properties": {
        "version": {"const": SARIF_VERSION},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name", "rules"],
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["ruleId", "message", "locations"],
                            "properties": {
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "minItems": 1,
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def sarif_doc(result):
    return json.loads(render_sarif(result))


def test_sarif_document_identity_and_catalog():
    doc = sarif_doc(run_checks([DIRTY], root=FIXTURES))
    assert doc["$schema"] == SARIF_SCHEMA_URI
    assert doc["version"] == SARIF_VERSION
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "aart-check"
    assert [r["id"] for r in driver["rules"]] == [r.code for r in all_rules()]


def test_sarif_results_use_one_based_regions():
    result = run_checks([DIRTY], root=FIXTURES)
    doc = sarif_doc(result)
    (run,) = doc["runs"]
    assert len(run["results"]) == len(result.findings)
    driver_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    for finding, emitted in zip(result.findings, run["results"]):
        assert emitted["ruleId"] == finding.rule
        assert driver_ids[emitted["ruleIndex"]] == finding.rule
        region = emitted["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == finding.line
        assert region["startColumn"] == finding.col + 1
        uri = emitted["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
        assert "\\" not in uri
    (invocation,) = run["invocations"]
    assert invocation["executionSuccessful"] is True


def test_sarif_surfaces_errors_as_notifications():
    failed = CheckResult(findings=[], errors=["boom: unreadable"])
    (run,) = sarif_doc(failed)["runs"]
    (invocation,) = run["invocations"]
    assert invocation["executionSuccessful"] is False
    notes = invocation["toolExecutionNotifications"]
    assert [n["message"]["text"] for n in notes] == ["boom: unreadable"]


def test_sarif_validates_against_schema_subset():
    jsonschema = pytest.importorskip("jsonschema")
    for result in (
        run_checks([DIRTY], root=FIXTURES),
        CheckResult(findings=[], errors=["boom"]),
    ):
        jsonschema.validate(sarif_doc(result), SARIF_SUBSET_SCHEMA)
