"""Every rule fires on its seeded fixture, and on nothing else there."""

import json
from pathlib import Path

import pytest

from repro.checks.base import all_rules
from repro.checks.runner import run_checks

FIXTURES = Path(__file__).parent / "fixtures"
GOLDEN = Path(__file__).parent / "golden.json"

#: fixture (relative to FIXTURES) -> the one rule it seeds violations for.
FIXTURE_RULE = {
    "repro/simulate/clock_abuse.py": "AART001",
    "repro/experiments/rng_abuse.py": "AART002",
    "repro/core/float_eq.py": "AART003",
    "repro/core/no_poll.py": "AART004",
    "repro/service/unlocked.py": "AART005",
    "repro/service/fleet/coordinator_unlocked.py": "AART005",
    "repro/badpkg/__init__.py": "AART006",
    "repro/engine/swallow.py": "AART007",
    "repro/service/lock_inversion.py": "AART008",
    "repro/service/send_under_lock.py": "AART009",
    "repro/service/snapshot_drift.py": "AART010",
}


def check_fixture(rel):
    return run_checks([FIXTURES / rel], root=FIXTURES)


def test_rule_catalog_is_complete():
    assert [r.code for r in all_rules()] == sorted(set(FIXTURE_RULE.values()))


@pytest.mark.parametrize("rel,code", sorted(FIXTURE_RULE.items()))
def test_rule_fires_on_its_fixture(rel, code):
    result = check_fixture(rel)
    assert not result.errors
    fired = {f.rule for f in result.findings}
    assert fired == {code}, f"{rel}: expected only {code}, got {sorted(fired)}"


@pytest.mark.parametrize("rel,code", sorted(FIXTURE_RULE.items()))
def test_select_narrows_to_one_rule(rel, code):
    result = check_fixture(rel)
    selected = run_checks([FIXTURES / rel], select=[code.lower()], root=FIXTURES)
    assert [f.to_dict() for f in selected.findings] == [
        f.to_dict() for f in result.findings
    ]
    others = [r.code for r in all_rules() if r.code != code]
    rest = run_checks([FIXTURES / rel], select=others, root=FIXTURES)
    assert rest.findings == []


def test_findings_match_golden():
    golden = json.loads(GOLDEN.read_text())
    actual = {}
    for path in sorted(FIXTURES.rglob("*.py")):
        rel = path.relative_to(FIXTURES).as_posix()
        result = run_checks([path], root=FIXTURES)
        assert not result.errors, (rel, result.errors)
        actual[rel] = {
            "findings": [f.to_dict() for f in result.findings],
            "suppressed": result.suppressed,
        }
    assert actual == golden


def test_every_fixture_is_in_the_golden_file():
    golden = json.loads(GOLDEN.read_text())
    on_disk = {p.relative_to(FIXTURES).as_posix() for p in FIXTURES.rglob("*.py")}
    assert set(golden) == on_disk
