"""Runner semantics: discovery, selection errors, exit codes, reports."""

import json
from pathlib import Path

from repro.checks.reporters import FORMAT_TAG, render_json, render_text
from repro.checks.runner import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    discover_files,
    run_checks,
)

FIXTURES = Path(__file__).parent / "fixtures"
REPO = Path(__file__).resolve().parents[2]


def test_discovery_skips_fixture_and_cache_dirs():
    found = discover_files([Path(__file__).parent], root=REPO)
    assert Path(__file__) in found
    assert not [p for p in found if "fixtures" in p.parts]
    assert not [p for p in found if "__pycache__" in p.parts]


def test_explicit_file_path_bypasses_the_fixtures_skip():
    target = FIXTURES / "repro/core/float_eq.py"
    assert discover_files([target], root=FIXTURES) == [target]


def test_unknown_rule_is_a_usage_error():
    result = run_checks([FIXTURES / "repro/core/float_eq.py"], select=["AART999"])
    assert result.exit_code == EXIT_ERROR
    assert "AART999" in result.errors[0]


def test_unknown_ignore_code_is_a_usage_error():
    result = run_checks([FIXTURES / "repro/core/float_eq.py"], ignore=["AART999"])
    assert result.exit_code == EXIT_ERROR
    assert "AART999" in result.errors[0]
    assert "--ignore" in result.errors[0]
    assert "AART001" in result.errors[0]  # the full catalog is listed


def test_ignore_drops_a_rule_case_insensitively():
    target = FIXTURES / "repro/core/float_eq.py"
    assert run_checks([target], root=FIXTURES).findings
    ignored = run_checks([target], ignore=["aart003"], root=FIXTURES)
    assert ignored.findings == [] and ignored.exit_code == EXIT_CLEAN


def test_ignore_beats_select_on_the_same_code():
    target = FIXTURES / "repro/core/float_eq.py"
    result = run_checks([target], select=["AART003"], ignore=["AART003"], root=FIXTURES)
    assert result.findings == [] and not result.errors


def test_exit_codes():
    dirty = run_checks([FIXTURES / "repro/core/float_eq.py"], root=FIXTURES)
    assert dirty.exit_code == EXIT_FINDINGS
    clean = run_checks(
        [FIXTURES / "repro/experiments/pragma_ok.py"], root=FIXTURES
    )
    assert clean.exit_code == EXIT_CLEAN


def test_json_report_shape():
    result = run_checks([FIXTURES / "repro/core/float_eq.py"], root=FIXTURES)
    doc = json.loads(render_json(result))
    assert doc["format"] == FORMAT_TAG
    assert doc["checked_files"] == 1
    assert doc["errors"] == []
    assert {f["rule"] for f in doc["findings"]} == {"AART003"}
    assert set(doc["findings"][0]) == {"rule", "path", "line", "col", "message"}
    assert "AART003" in doc["rules"]
    assert doc["rules"]["AART003"]["rationale"]


def test_text_report_mentions_every_finding():
    result = run_checks([FIXTURES / "repro/core/float_eq.py"], root=FIXTURES)
    text = render_text(result)
    assert text.count("AART003") == len(result.findings)
    assert "1 file(s)" in text
