"""AART007 fixture: broad handlers that swallow the error."""


def quiet(step, sink):
    try:
        step()
    except Exception:  # AART007: broad, swallows
        pass
    try:
        step()
    except:  # noqa: E722  AART007: bare, swallows
        step = None
    try:
        step()
    except Exception as exc:  # allowed: routed to a sink
        sink.emit({"type": "error", "error": str(exc)})
    try:
        step()
    except KeyError:  # allowed: narrow handler
        pass
