"""AART009 fixture: socket send performed while holding the service lock."""

import socket
import threading


class Notifier:
    def __init__(self, conn: socket.socket):
        self._lock = threading.Lock()
        self.conn = conn

    def broadcast(self, payload):
        with self._lock:
            self.conn.sendall(payload)  # AART009: blocking send under the lock

    def quiet(self, payload):
        framed = payload + b"\n"
        with self._lock:
            pass  # allowed: nothing blocking in the critical section
        self.conn.sendall(framed)  # allowed: the lock is released first


def lockfree_send(conn, payload):
    conn.sendall(payload)  # allowed: no lock held anywhere on this path
