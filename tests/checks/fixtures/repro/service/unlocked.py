"""AART005 fixture: lock-owning class mutating state outside its lock."""

import threading


class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0  # allowed: __init__ is exempt

    def bump(self):
        self.value += 1  # AART005: mutation outside `with self._lock`

    def safe_bump(self):
        with self._lock:
            self.value += 1  # allowed: under the lock


class Unlocked:
    def __init__(self):
        self.value = 0

    def bump(self):
        self.value += 1  # allowed: class owns no lock
