"""AART010 fixture: snapshot schemas drifting between writer and reader."""

PLAN_FORMAT = "aart-plan/1"


class Plan:
    def __init__(self, steps, owner="ops"):
        self.steps = steps
        self.owner = owner

    def to_dict(self):
        return {
            "format": PLAN_FORMAT,
            "steps": list(self.steps),
            "owner": self.owner,  # drift: from_dict never reads "owner"
        }

    @classmethod
    def from_dict(cls, data):
        if data.get("format") != PLAN_FORMAT:
            raise ValueError("not a plan document")
        # drift: requires "budget", which to_dict never writes
        return cls(data["steps"], data["budget"])


class Orphan:
    def to_dict(self):  # AART010: format-tagged writer with no from_dict twin
        return {"format": "aart-orphan/1", "x": 1}


def report_to_dict(report):
    # AART010: bad version tag (and no report_from_dict reader)
    return {"format": "Report-V2", "body": report}
