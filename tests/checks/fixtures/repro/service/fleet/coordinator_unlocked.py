"""AART005 fixture: a fleet-coordinator-shaped class leaking its lock."""

import threading


class MiniCoordinator:
    def __init__(self):
        self._lock = threading.Lock()
        self._location = {}  # allowed: __init__ is exempt
        self.steps = 0

    def record(self, thread_id, shard):
        with self._lock:
            self._location = {**self._location, thread_id: shard}  # allowed

    def step(self):
        self.steps += 1  # AART005: counter mutated outside `with self._lock`

    def forget(self, thread_id):
        del self._location  # AART005: delete outside the lock

    def migrate(self, thread_id, shard):
        if shard is not None:
            self._location = {thread_id: shard}  # AART005: nested but unguarded
