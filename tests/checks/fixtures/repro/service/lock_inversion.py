"""AART008 fixture: two locks acquired in opposite orders across classes."""

import threading


class Store:
    def __init__(self):
        self._lock = threading.Lock()
        self.journal: "Journal | None" = None

    def attach(self, journal: "Journal"):
        with self._lock:
            self.journal = journal

    def reserve(self, entry):
        with self._lock:
            return entry

    def checkpoint(self):
        with self._lock:  # Store._lock held ...
            self.journal.flush()  # ... while Journal._lock is acquired


class Journal:
    def __init__(self, store: Store):
        self._lock = threading.Lock()
        self.store = store

    def append(self, entry):
        with self._lock:  # Journal._lock held ...
            self.store.reserve(entry)  # ... while Store._lock is acquired

    def flush(self):
        with self._lock:
            return []


class Straight:
    """Consistent ordering: always Store -> Journal, no inversion."""

    def __init__(self, store: Store, journal: Journal):
        self.store = store
        self.journal = journal

    def drain(self, entry):
        self.store.reserve(entry)
        self.journal.flush()
