"""AART004 fixture: a registered solver that iterates without polling."""

from repro.engine.registry import attach_batch_fn, register_solver


def greedy_order(problem):
    order = []
    for i in range(problem.n_threads):  # loop, reached from the entry
        order.append(i)
    return order


def slow_solver(problem, lin, ctx, seed):
    total = 0
    for i in greedy_order(problem):  # loops but never ctx.check_deadline()
        total += i
    return total


def polite_solver(problem, lin, ctx, seed):
    total = 0
    for i in greedy_order(problem):
        if ctx is not None:
            ctx.check_deadline()  # allowed: polls inside the loop
        total += i
    return total


register_solver("fixture_bad", slow_solver, kind="heuristic")
register_solver("fixture_good", polite_solver, kind="heuristic")


def batch_walk(bp, blin, ctx, rngs):
    total = 0
    for t in range(bp.n_trials):  # loops but never ctx.check_deadline()
        total += t
    return total


def polite_batch_walk(bp, blin, ctx, rngs):
    total = 0
    for t in range(bp.n_trials):
        if ctx is not None:
            ctx.check_deadline()  # allowed: batch solvers poll too
        total += t
    return total


attach_batch_fn("fixture_bad", batch_walk)
attach_batch_fn("fixture_good", polite_batch_walk)


def price_walk(problem, lin, ctx, seed):
    lam = 1.0
    while lam > 1e-6:  # price-update iteration, never ctx.check_deadline()
        lam *= 0.5
    return lam


def polite_price_walk(problem, lin, ctx, seed):
    lam = 1.0
    while lam > 1e-6:
        if ctx is not None:
            ctx.check_deadline()  # allowed: tatonnement loops poll too
        lam *= 0.5
    return lam


register_solver("fixture_price_bad", price_walk, kind="extension")
register_solver("fixture_price_good", polite_price_walk, kind="extension")
