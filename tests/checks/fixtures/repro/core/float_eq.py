"""AART003 fixture: exact float equality in solver math."""


def feasible(alloc, cap, total, budget):
    if alloc == 1.5:  # AART003: equality against non-zero float literal
        return False
    if total / cap == budget:  # AART003: float expression equality
        return False
    if float(alloc) != cap:  # AART003: float cast inequality
        return False
    if alloc == 0.0:  # allowed: exact-zero sentinel
        return True
    return alloc <= cap
