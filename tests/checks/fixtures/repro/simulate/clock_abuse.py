"""AART001 fixture: raw wall-clock reads outside the timing layer."""

import time
from time import perf_counter


def measure(run):
    start = time.time()  # AART001: banned module call
    run()
    mid = perf_counter()  # AART001: banned bare name call
    elapsed = time.perf_counter() - start  # AART001: banned module call
    ok = time.monotonic()  # allowed: control-flow clock, never banned
    return elapsed, mid, ok
