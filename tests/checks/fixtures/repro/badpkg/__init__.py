"""AART006 fixture: an incoherent package __init__."""

from repro.somewhere import *  # AART006: star import
from repro.core import thing  # AART006: public re-export missing from __all__

__all__ = ["ghost"]  # AART006: ghost is never bound
