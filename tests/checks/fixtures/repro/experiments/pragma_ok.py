"""Pragma fixture: every violation here is suppressed on its line."""

import random  # aart: ignore[AART002]  (fixture: justified legacy use)

import numpy as np


def draw(n):
    return np.random.rand(n), random.random()  # aart: ignore
