"""AART002 fixture: stdlib random and legacy numpy RNG."""

import random  # AART002: stdlib random import
from random import choice  # AART002: stdlib random import
from numpy.random import RandomState  # AART002: legacy numpy API

import numpy as np


def draw(n):
    legacy = np.random.rand(n)  # AART002: legacy global-state draw
    modern = np.random.default_rng(0).random(n)  # allowed: modern API
    return random.random(), choice([1, 2]), RandomState(0), legacy, modern
