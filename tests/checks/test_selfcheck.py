"""The repo must pass its own checker — the CI gate in miniature."""

import json
from pathlib import Path

from repro.checks.runner import EXIT_CLEAN, run_checks
from repro.cli import main

REPO = Path(__file__).resolve().parents[2]


def test_source_tree_is_clean():
    result = run_checks([REPO / "src"], root=REPO)
    assert not result.errors
    assert result.findings == [], "\n".join(
        f"{f.location()}: {f.rule} {f.message}" for f in result.findings
    )
    assert result.exit_code == EXIT_CLEAN
    assert result.checked > 50  # the whole tree, not a subset


def test_test_tree_is_clean():
    result = run_checks([REPO / "tests"], root=REPO)
    assert not result.errors
    assert result.findings == []


def test_cli_check_command(capsys, monkeypatch):
    monkeypatch.chdir(REPO)
    code = main(["check", "src", "--format", "json"])
    doc = json.loads(capsys.readouterr().out)
    assert code == EXIT_CLEAN
    assert doc["format"] == "aart-findings/1"
    assert doc["findings"] == []


def test_cli_select_unknown_rule_exits_2(capsys, monkeypatch):
    monkeypatch.chdir(REPO)
    code = main(["check", "src", "--select", "NOPE"])
    assert code == 2
    assert "NOPE" in capsys.readouterr().out
