"""Call-graph invariants: synthetic modules (hypothesis) and the real tree."""

import ast
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checks.base import ModuleInfo, Project
from repro.checks.runner import discover_files, load_module

REPO = Path(__file__).resolve().parents[2]


def make_project(sources):
    """Build a Project from {module_tail: source} under a synthetic package."""
    modules = []
    for tail, source in sources.items():
        relpath = f"src/repro/synth/{tail}.py"
        modules.append(
            ModuleInfo(
                path=REPO / relpath,
                relpath=relpath,
                source=source,
                tree=ast.parse(source),
            )
        )
    return Project(modules)


# --------------------------------------------------------------- hypothesis

#: index of the module each function lives in, for up to 3 modules.
_N_MODULES = 3
_FN_NAMES = [f"fn_{i}" for i in range(6)]


@st.composite
def call_topologies(draw):
    """A random function-per-module layout plus a random call relation."""
    homes = {name: draw(st.integers(0, _N_MODULES - 1)) for name in _FN_NAMES}
    calls = {
        name: draw(st.lists(st.sampled_from(_FN_NAMES), max_size=4, unique=True))
        for name in _FN_NAMES
    }
    return homes, calls


def render_sources(homes, calls):
    """Emit one source file per module, importing cross-module callees."""
    sources = {}
    for mod_idx in range(_N_MODULES):
        local = [n for n, home in homes.items() if home == mod_idx]
        lines = []
        imported = set()
        for name in local:
            for callee in calls[name]:
                target = homes[callee]
                if target != mod_idx and callee not in imported:
                    lines.append(f"from repro.synth.m{target} import {callee}")
                    imported.add(callee)
        for name in local:
            lines.append(f"def {name}():")
            body = [f"    {callee}()" for callee in calls[name]]
            lines.extend(body or ["    pass"])
        sources[f"m{mod_idx}"] = "\n".join(lines) + "\n"
    return sources


@settings(max_examples=30, deadline=None)
@given(call_topologies())
def test_every_resolved_edge_points_at_a_real_def(topology):
    homes, calls = topology
    project = make_project(render_sources(homes, calls))
    graph = project.callgraph()
    for caller, sites in graph.edges.items():
        assert caller in graph.functions
        for site in sites:
            assert site.caller == caller
            assert site.callee in graph.functions


@settings(max_examples=30, deadline=None)
@given(call_topologies())
def test_generated_calls_are_all_recovered(topology):
    homes, calls = topology
    project = make_project(render_sources(homes, calls))
    graph = project.callgraph()
    for name, callees in calls.items():
        caller = f"repro.synth.m{homes[name]}.{name}"
        found = {site.callee for site in graph.callees(caller)}
        expected = {f"repro.synth.m{homes[c]}.{c}" for c in callees}
        assert found == expected


# ------------------------------------------------------- targeted resolution


def test_self_method_and_class_instantiation_resolve():
    project = make_project(
        {
            "obj": (
                "class Worker:\n"
                "    def run(self):\n"
                "        self.step()\n"
                "    def step(self):\n"
                "        pass\n"
                "def main():\n"
                "    w = Worker()\n"
                "    w.run()\n"
            )
        }
    )
    graph = project.callgraph()
    run = "repro.synth.obj.Worker.run"
    assert {s.callee for s in graph.callees(run)} == {"repro.synth.obj.Worker.step"}
    main_edges = {s.callee for s in graph.callees("repro.synth.obj.main")}
    assert "repro.synth.obj.Worker.__init__" not in main_edges  # no __init__ def
    assert run in main_edges  # local-var type flows from the constructor call


def test_registered_solvers_and_lambda_entries_are_recovered():
    project = make_project(
        {
            "solvers": (
                "from repro.engine.registry import attach_batch_fn, register_solver\n"
                "def fast(problem):\n"
                "    return problem\n"
                "def _impl(problem):\n"
                "    return problem\n"
                "def batched(problems):\n"
                "    return problems\n"
                'register_solver("fast", fast)\n'
                'register_solver("slow", lambda problem: _impl(problem))\n'
                'attach_batch_fn("fast", batched)\n'
            )
        }
    )
    graph = project.callgraph()
    assert set(graph.registered_entries) == {
        "repro.synth.solvers._impl",
        "repro.synth.solvers.batched",
        "repro.synth.solvers.fast",
    }


# -------------------------------------------------------------- real tree


def load_src_project():
    files = discover_files([REPO / "src"], root=REPO)
    return Project([load_module(path, REPO) for path in files])


def test_real_tree_edges_and_registrations_are_well_formed():
    graph = load_src_project().callgraph()
    assert graph.functions and graph.edges
    for caller, sites in graph.edges.items():
        assert caller in graph.functions
        for site in sites:
            assert site.callee in graph.functions
    # Every dynamically registered solver (and batch twin) is a real def:
    # the dispatch through the registry must never dangle.
    assert graph.registered_entries
    for entry in graph.registered_entries:
        assert entry in graph.functions
    shipped = {entry.rsplit(".", 2)[-2:][0] for entry in graph.registered_entries}
    assert {"algorithm1", "algorithm2", "algorithm2_batch"} <= shipped


def test_real_tree_transport_protocols_are_detected():
    graph = load_src_project().callgraph()
    protos = {qual.rsplit(".", 1)[-1] for qual in graph.protocols}
    assert {"RequestProcessor", "Introspectable"} <= protos
    for proto, impls in graph.implementations.items():
        assert proto in graph.protocols
        for impl in impls:
            assert impl in graph.classes
