"""Baseline workflow: round trip, count semantics, loud failure modes."""

import json
from pathlib import Path

import pytest

from repro.checks.baseline import (
    BASELINE_FORMAT,
    apply_baseline,
    baseline_key,
    load_baseline,
    render_baseline,
)
from repro.checks.runner import EXIT_CLEAN, EXIT_ERROR, run_checks

FIXTURES = Path(__file__).parent / "fixtures"
DIRTY = FIXTURES / "repro/core/float_eq.py"


def dirty_findings():
    result = run_checks([DIRTY], root=FIXTURES)
    assert result.findings
    return result.findings


def test_round_trip_swallows_every_known_finding(tmp_path):
    findings = dirty_findings()
    baseline = tmp_path / "base.json"
    baseline.write_text(render_baseline(findings))
    kept, baselined = apply_baseline(findings, load_baseline(baseline))
    assert kept == []
    assert baselined == len(findings)


def test_run_checks_with_baseline_reports_clean(tmp_path):
    baseline = tmp_path / "base.json"
    first = run_checks([DIRTY], root=FIXTURES, baseline=baseline, update_baseline=True)
    assert first.exit_code == EXIT_CLEAN
    assert first.baselined > 0 and first.findings == []
    assert json.loads(baseline.read_text())["format"] == BASELINE_FORMAT
    second = run_checks([DIRTY], root=FIXTURES, baseline=baseline)
    assert second.exit_code == EXIT_CLEAN
    assert second.baselined == first.baselined


def test_extra_instances_above_the_count_still_fail(tmp_path):
    findings = dirty_findings()
    baseline = tmp_path / "base.json"
    baseline.write_text(render_baseline(findings))
    allowances = load_baseline(baseline)
    key = baseline_key(findings[0])
    allowances[key] -= 1  # pretend one fewer instance was known
    kept, baselined = apply_baseline(findings, allowances)
    assert [baseline_key(f) for f in kept] == [key]
    assert baselined == len(findings) - 1


def test_keys_are_line_independent():
    for finding in dirty_findings():
        key = baseline_key(finding)
        assert key == (finding.rule, finding.path, finding.message)
        assert finding.line not in key


@pytest.mark.parametrize(
    "content,hint",
    [
        (None, "does not exist"),
        ("{not json", "not valid JSON"),
        ('{"format": "other/1", "entries": []}', "aart-baseline/1"),
        ('{"format": "aart-baseline/1", "entries": [{"rule": "X"}]}', "malformed"),
    ],
)
def test_bad_baseline_files_fail_loudly(tmp_path, content, hint):
    path = tmp_path / "base.json"
    if content is not None:
        path.write_text(content)
    with pytest.raises(ValueError, match=hint):
        load_baseline(path)


def test_bad_baseline_is_a_usage_error_at_the_runner(tmp_path):
    result = run_checks([DIRTY], root=FIXTURES, baseline=tmp_path / "missing.json")
    assert result.exit_code == EXIT_ERROR
    assert "does not exist" in result.errors[0]
