"""Line-anchored `# aart: ignore[...]` suppression."""

from pathlib import Path

from repro.checks.base import Finding
from repro.checks.pragmas import filter_findings, parse_pragmas
from repro.checks.runner import run_checks

FIXTURES = Path(__file__).parent / "fixtures"


def test_parse_targeted_and_blanket_pragmas():
    pragmas = parse_pragmas(
        [
            "x = 1  # aart: ignore[AART001]",
            "y = 2",
            "z = 3  # aart: ignore[AART002, AART003]",
            "w = 4  # aart: ignore",
        ]
    )
    assert pragmas[1].codes == frozenset({"AART001"})
    assert 2 not in pragmas
    assert pragmas[3].codes == frozenset({"AART002", "AART003"})
    assert pragmas[4].codes == frozenset()  # blanket: suppress all


def _finding(rule, line, path="mod.py"):
    return Finding(rule=rule, path=path, line=line, col=0, message="m")


def test_filter_is_line_and_code_exact():
    pragmas = {"mod.py": parse_pragmas(["a  # aart: ignore[AART001]", "b"])}
    kept = filter_findings(
        [
            _finding("AART001", 1),  # suppressed: code + line match
            _finding("AART002", 1),  # kept: wrong code
            _finding("AART001", 2),  # kept: wrong line
            _finding("AART001", 1, path="other.py"),  # kept: wrong file
        ],
        pragmas,
    )
    assert [(f.rule, f.path, f.line) for f in kept] == [
        ("AART002", "mod.py", 1),
        ("AART001", "mod.py", 2),
        ("AART001", "other.py", 1),
    ]


def test_pragma_fixture_is_fully_suppressed():
    result = run_checks([FIXTURES / "repro/experiments/pragma_ok.py"], root=FIXTURES)
    assert not result.errors
    assert result.findings == []
    assert result.suppressed == 2  # both seeded AART002 violations
