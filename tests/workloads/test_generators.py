"""Section VII workload generators: distributions, anchors, problems."""

import numpy as np
import pytest

from repro.core.problem import AAProblem
from repro.utility.batch import GenericBatch, QuadSplineBatch
from repro.workloads.generators import (
    DISTRIBUTIONS,
    FoldedNormalDistribution,
    PowerLawDistribution,
    TwoPointDistribution,
    UniformDistribution,
    draw_anchors,
    make_distribution,
    make_problem,
    paper_utilities,
)


def test_registry_has_paper_families():
    assert set(DISTRIBUTIONS) == {"uniform", "normal", "powerlaw", "discrete"}


def test_make_distribution_by_name():
    d = make_distribution("powerlaw", alpha=3.0)
    assert isinstance(d, PowerLawDistribution)
    assert d.alpha == 3.0


def test_make_distribution_unknown():
    with pytest.raises(ValueError, match="unknown distribution"):
        make_distribution("cauchy")


def test_uniform_bounds():
    d = UniformDistribution(0.0, 1.0)
    rng = np.random.default_rng(0)
    x = d.sample(rng, 1000)
    assert np.all((x >= 0) & (x <= 1))


def test_uniform_rejects_bad_range():
    with pytest.raises(ValueError):
        UniformDistribution(2.0, 1.0)


def test_folded_normal_nonnegative():
    d = FoldedNormalDistribution(1.0, 1.0)
    rng = np.random.default_rng(0)
    assert np.all(d.sample(rng, 1000) >= 0)


def test_powerlaw_support_and_tail():
    d = PowerLawDistribution(alpha=2.0, x_min=1.0)
    rng = np.random.default_rng(0)
    x = d.sample(rng, 20000)
    assert np.all(x >= 1.0)
    # alpha=2 Pareto has heavy tail: some draws far above the median.
    assert np.max(x) > 20 * np.median(x)


def test_powerlaw_needs_alpha_above_one():
    with pytest.raises(ValueError):
        PowerLawDistribution(alpha=1.0)


def test_powerlaw_tail_lightens_with_alpha():
    rng1, rng2 = np.random.default_rng(1), np.random.default_rng(1)
    heavy = PowerLawDistribution(alpha=1.5).sample(rng1, 5000)
    light = PowerLawDistribution(alpha=4.0).sample(rng2, 5000)
    assert np.mean(heavy) > np.mean(light)


def test_two_point_values():
    d = TwoPointDistribution(gamma=0.3, theta=5.0)
    rng = np.random.default_rng(0)
    x = d.sample(rng, 2000)
    assert set(np.unique(x)) == {1.0, 5.0}
    # P(low) = 0.3.
    assert np.mean(x == 1.0) == pytest.approx(0.3, abs=0.05)


def test_two_point_validation():
    with pytest.raises(ValueError):
        TwoPointDistribution(gamma=1.5)
    with pytest.raises(ValueError):
        TwoPointDistribution(theta=0.5)


def test_anchors_ordered():
    v, w = draw_anchors(UniformDistribution(), 500, seed=1)
    assert np.all(w <= v)
    assert v.shape == w.shape == (500,)


def test_anchors_reproducible():
    v1, w1 = draw_anchors(UniformDistribution(), 10, seed=5)
    v2, w2 = draw_anchors(UniformDistribution(), 10, seed=5)
    assert np.array_equal(v1, v2) and np.array_equal(w1, w2)


def test_anchors_negative_n():
    with pytest.raises(ValueError):
        draw_anchors(UniformDistribution(), -1)


def test_paper_utilities_quadspline_default():
    batch = paper_utilities(UniformDistribution(), 6, 100.0, seed=0)
    assert isinstance(batch, QuadSplineBatch)
    assert len(batch) == 6
    for f in batch.functions():
        f.validate()


def test_paper_utilities_pchip_mode():
    batch = paper_utilities(UniformDistribution(), 4, 100.0, seed=0, interpolator="pchip")
    assert isinstance(batch, GenericBatch)
    assert len(batch) == 4


def test_paper_utilities_unknown_interpolator():
    with pytest.raises(ValueError, match="interpolator"):
        paper_utilities(UniformDistribution(), 4, 100.0, interpolator="spline9000")


def test_same_seed_same_utilities_across_interpolators():
    """Both interpolators must see identical anchors for a given seed."""
    q = paper_utilities(UniformDistribution(), 5, 100.0, seed=9)
    p = paper_utilities(UniformDistribution(), 5, 100.0, seed=9, interpolator="pchip")
    for fq, fp in zip(q.functions(), p.functions()):
        assert float(fq.value(50.0)) == pytest.approx(float(fp.value(50.0)))
        assert float(fq.value(100.0)) == pytest.approx(float(fp.value(100.0)))


def test_make_problem_beta_scaling():
    p = make_problem(UniformDistribution(), n_servers=8, beta=5, seed=0)
    assert isinstance(p, AAProblem)
    assert p.n_threads == 40
    assert p.beta == 5.0


def test_make_problem_rejects_bad_beta():
    with pytest.raises(ValueError):
        make_problem(UniformDistribution(), 4, 0.0)


def test_make_problem_rejects_fractional_server_count():
    with pytest.raises(ValueError, match="n_servers must be an integer"):
        make_problem(UniformDistribution(), 4.5, beta=2.0)


def test_draw_anchors_rejects_fractional_count():
    from repro.workloads.generators import draw_anchors

    with pytest.raises(ValueError, match="n must be an integer"):
        draw_anchors(UniformDistribution(), 3.5)
    with pytest.raises(ValueError, match="at least 0"):
        draw_anchors(UniformDistribution(), -1)


def test_distribution_name_attribute():
    assert UniformDistribution().name == "uniform"
    assert PowerLawDistribution().name == "powerlaw"
