"""Canonical scenario suites."""

import numpy as np

from repro.workloads.suites import chip_phase_flip_suite, chip_trace_suite


def test_chip_suite_composition():
    traces = chip_trace_suite(n_friendly=4, trace_len=500, seed=1)
    assert len(traces) == 7  # 4 friendly + scan + working-set + markov
    for t in traces:
        assert t.size > 0


def test_chip_suite_disjoint_address_ranges():
    traces = chip_trace_suite(n_friendly=3, trace_len=400, seed=2)
    ranges = [(int(t.min()), int(t.max())) for t in traces]
    for (lo1, hi1), (lo2, hi2) in zip(ranges, ranges[1:]):
        assert hi1 < lo2


def test_chip_suite_reproducible():
    a = chip_trace_suite(seed=5, trace_len=300)
    b = chip_trace_suite(seed=5, trace_len=300)
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


def test_phase_flip_suite_structure():
    traces = chip_phase_flip_suite(half_len=200, seed=0)
    assert len(traces) == 4
    # The flip threads change address range at the midpoint.
    t0 = traces[0]
    assert t0[:200].max() < 1000 <= t0[200:].min()


def test_suites_feed_the_planner():
    from repro.simulate.cache import plan_partitioning

    plan = plan_partitioning(chip_trace_suite(n_friendly=3, trace_len=600), 2, 8)
    assert plan.realized_hits > 0
