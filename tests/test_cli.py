"""CLI: generate → solve → evaluate round-trip, figure smoke, error paths."""

import json

import pytest

from repro.cli import main


def test_generate_writes_problem(tmp_path, capsys):
    out = tmp_path / "p.json"
    rc = main(["generate", "--dist", "uniform", "--servers", "2", "--beta", "3",
               "--capacity", "50", "--seed", "1", "-o", str(out)])
    assert rc == 0
    data = json.loads(out.read_text())
    assert data["format"] == "aart-problem/1"
    assert data["n_servers"] == 2
    assert len(data["utilities"]) == 6
    assert "6-thread" in capsys.readouterr().out


def test_generate_discrete_params(tmp_path):
    out = tmp_path / "d.json"
    rc = main(["generate", "--dist", "discrete", "--gamma", "0.5", "--theta", "3",
               "--servers", "2", "--beta", "2", "-o", str(out)])
    assert rc == 0


def test_solve_prints_certificate(tmp_path, capsys):
    out = tmp_path / "p.json"
    main(["generate", "--servers", "2", "--beta", "4", "--capacity", "100",
          "--seed", "3", "-o", str(out)])
    rc = main(["solve", str(out)])
    assert rc == 0
    text = capsys.readouterr().out
    assert "certified ratio" in text
    assert "server 0" in text


def test_solve_saves_and_evaluate_scores(tmp_path, capsys):
    p = tmp_path / "p.json"
    a = tmp_path / "a.json"
    main(["generate", "--servers", "2", "--beta", "3", "--seed", "5", "-o", str(p)])
    rc = main(["solve", str(p), "-o", str(a)])
    assert rc == 0
    assert a.exists()
    rc = main(["evaluate", str(p), str(a)])
    assert rc == 0
    assert "evaluated assignment" in capsys.readouterr().out


def test_evaluate_infeasible_assignment_exits_nonzero(tmp_path, capsys):
    """Overloading a server must be reported clearly, not scored."""
    p = tmp_path / "p.json"
    a = tmp_path / "a.json"
    main(["generate", "--servers", "2", "--beta", "2", "--capacity", "100",
          "--seed", "7", "-o", str(p)])
    n_threads = len(json.loads(p.read_text())["utilities"])
    # Every thread on server 0 with a full-capacity grant: loads sum to
    # n_threads × C on one server — infeasible for any n_threads > 1.
    a.write_text(json.dumps({
        "format": "aart-assignment/1",
        "servers": [0] * n_threads,
        "allocations": [100.0] * n_threads,
    }))
    rc = main(["evaluate", str(p), str(a)])
    assert rc == 2
    err = capsys.readouterr().err
    assert "infeasible" in err
    assert "exceeds capacity" in err


def test_evaluate_wrong_thread_count_exits_nonzero(tmp_path, capsys):
    p = tmp_path / "p.json"
    a = tmp_path / "a.json"
    main(["generate", "--servers", "2", "--beta", "2", "-o", str(p)])
    a.write_text(json.dumps({
        "format": "aart-assignment/1", "servers": [0], "allocations": [1.0],
    }))
    assert main(["evaluate", str(p), str(a)]) == 2
    assert "infeasible" in capsys.readouterr().err


def test_solve_refine_flag(tmp_path, capsys):
    p = tmp_path / "p.json"
    main(["generate", "--servers", "2", "--beta", "2", "--seed", "4", "-o", str(p)])
    rc = main(["solve", str(p), "--refine"])
    assert rc == 0
    assert "local search" in capsys.readouterr().out


def test_solve_raw_mode(tmp_path):
    p = tmp_path / "p.json"
    main(["generate", "--servers", "2", "--beta", "3", "--seed", "6", "-o", str(p)])
    assert main(["solve", str(p), "--no-reclaim", "--algorithm", "alg1"]) == 0


def test_figure_smoke(capsys):
    rc = main(["figure", "fig3c", "--trials", "2"])
    # Shape warnings allowed at 2 trials; command must still render rows.
    out = capsys.readouterr().out
    assert "alg2/SO" in out
    assert rc in (0, 1)


def test_figure_spark_and_save(tmp_path, capsys):
    out_path = tmp_path / "fig.json"
    rc = main(["figure", "fig3c", "--trials", "2", "--spark",
               "--save", str(out_path)])
    assert rc in (0, 1)
    out = capsys.readouterr().out
    assert "…" in out  # sparkline range markers
    assert out_path.exists()
    data = json.loads(out_path.read_text())
    assert data["figure_id"] == "fig3c"


def test_profile_diagnostics(tmp_path, capsys):
    p = tmp_path / "p.json"
    main(["generate", "--dist", "powerlaw", "--servers", "2", "--beta", "4",
          "--seed", "8", "-o", str(p)])
    rc = main(["profile", str(p)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "gini" in out
    assert "saturation" in out


def test_client_session_against_live_server(capsys):
    """`aart client` subcommands against a TcpServer-hosted daemon."""
    from repro.service import AllocationService, ClusterState, TcpServer

    svc = AllocationService(ClusterState(2, 10.0))
    with TcpServer(svc, port=0) as srv:
        port = str(srv.port)
        rc = main(["client", "--port", port, "submit", "--id", "t1", "--utility",
                   '{"type": "log", "coeff": 1, "scale": 1, "cap": 10}'])
        assert rc == 0
        assert "submit: ok" in capsys.readouterr().out
        rc = main(["client", "--port", port, "status"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 threads on 2 servers" in out
        assert "total utility" in out
        rc = main(["client", "--port", port, "rebalance"])
        assert rc == 0
        rc = main(["client", "--port", port, "remove", "--id", "ghost"])
        assert rc == 1
        assert "REFUSED" in capsys.readouterr().err
        rc = main(["client", "--port", port, "remove", "--id", "t1"])
        assert rc == 0


def test_client_submit_utility_file(tmp_path, capsys):
    from repro.service import AllocationService, ClusterState, TcpServer

    spec = tmp_path / "u.json"
    spec.write_text('{"type": "saturating", "vmax": 2, "k": 1, "cap": 10}')
    svc = AllocationService(ClusterState(1, 10.0))
    with TcpServer(svc, port=0) as srv:
        rc = main(["client", "--port", str(srv.port), "submit", "--id", "s",
                   "--utility-file", str(spec)])
    assert rc == 0
    assert svc.state.thread_ids == ["s"]


def test_serve_parser_defaults():
    from repro.cli import build_parser

    args = build_parser().parse_args(["serve", "--port", "0"])
    assert args.servers == 4
    assert args.staleness == 16
    assert 0.82 < args.drift < 0.83


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        main(["figure", "fig99"])


def test_missing_subcommand_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_solve_trace_then_chrome_export(tmp_path, capsys):
    """--trace writes a span tree that `aart trace` renders both ways."""
    p = tmp_path / "prob.json"
    trace = tmp_path / "run.jsonl"
    main(["generate", "--servers", "2", "--beta", "3", "--seed", "2", "-o", str(p)])
    assert main(["solve", str(p), "--trace", str(trace)]) == 0
    capsys.readouterr()

    chrome = tmp_path / "run.chrome.json"
    assert main(["trace", str(trace), "--format", "chrome", "-o", str(chrome)]) == 0
    doc = json.loads(chrome.read_text())
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    names = {e["name"] for e in xs}
    assert "solve.alg2" in names and "linearize" in names

    assert main(["trace", str(trace), "--format", "tree"]) == 0
    out = capsys.readouterr().out
    assert "solve.alg2" in out
    assert "linearize" in out


def test_trace_rejects_file_without_spans(tmp_path, capsys):
    bogus = tmp_path / "empty.jsonl"
    bogus.write_text('{"type": "counters", "counters": {}}\n')
    assert main(["trace", str(bogus)]) == 2
    assert "no aart-trace" in capsys.readouterr().err


def test_client_metrics_and_top_against_live_server(capsys):
    from repro.service import AllocationService, ClusterState, TcpServer

    svc = AllocationService(ClusterState(2, 10.0))
    with TcpServer(svc, port=0) as srv:
        port = str(srv.port)
        main(["client", "--port", port, "submit", "--id", "t1", "--utility",
              '{"type": "log", "coeff": 1, "scale": 1, "cap": 10}'])
        main(["client", "--port", port, "rebalance"])
        capsys.readouterr()

        assert main(["client", "--port", port, "metrics"]) == 0
        out = capsys.readouterr().out
        assert "guarantee: OK" in out
        assert "ratio: last" in out
        assert "aart_request_latency_seconds" in out
        assert "aart_threads" in out

        rc = main(["top", "--port", port, "--iterations", "1", "--interval", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "threads" in out and "ratio" in out


def test_serve_metrics_port_flag_parses():
    from repro.cli import build_parser

    args = build_parser().parse_args(["serve", "--port", "0",
                                      "--metrics-port", "9100"])
    assert args.metrics_port == 9100
    assert build_parser().parse_args(["serve"]).metrics_port is None
