"""MCKP solvers: DP exactness, greedy quality, utility discretization."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation.fox import fox_greedy
from repro.allocation.mckp import (
    MCKPItem,
    mckp_dp,
    mckp_greedy,
    utilities_to_classes,
)
from repro.utility.functions import LinearUtility, LogUtility

CAP = 10.0


def _brute_force(classes, capacity):
    best = -np.inf
    for combo in itertools.product(*[range(len(c)) for c in classes]):
        w = sum(classes[k][i].weight for k, i in enumerate(combo))
        if w <= capacity:
            v = sum(classes[k][i].value for k, i in enumerate(combo))
            best = max(best, v)
    return best


def _random_classes(rng, n_classes, n_items, max_w=6):
    classes = []
    for _ in range(n_classes):
        items = [MCKPItem(0, 0.0)]
        for _ in range(n_items):
            items.append(
                MCKPItem(int(rng.integers(0, max_w + 1)), float(rng.uniform(0, 5)))
            )
        classes.append(items)
    return classes


def test_dp_matches_brute_force_fixed():
    classes = [
        [MCKPItem(0, 0.0), MCKPItem(2, 3.0), MCKPItem(4, 5.0)],
        [MCKPItem(0, 0.0), MCKPItem(3, 4.0)],
        [MCKPItem(1, 1.0), MCKPItem(5, 6.0)],
    ]
    sol = mckp_dp(classes, 7)
    assert sol.total_value == pytest.approx(_brute_force(classes, 7))
    assert sol.total_weight <= 7


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=1 << 30))
def test_dp_matches_brute_force_random(seed):
    rng = np.random.default_rng(seed)
    classes = _random_classes(rng, int(rng.integers(1, 4)), int(rng.integers(1, 4)))
    cap = int(rng.integers(0, 12))
    sol = mckp_dp(classes, cap)
    assert sol.total_value == pytest.approx(_brute_force(classes, cap))


def test_dp_choice_reconstruction_consistent():
    classes = [
        [MCKPItem(0, 0.0), MCKPItem(2, 3.0)],
        [MCKPItem(0, 0.0), MCKPItem(2, 4.0)],
    ]
    sol = mckp_dp(classes, 2)
    value = sum(classes[k][i].value for k, i in enumerate(sol.choices))
    weight = sum(classes[k][i].weight for k, i in enumerate(sol.choices))
    assert value == pytest.approx(sol.total_value)
    assert weight == sol.total_weight


def test_dp_infeasible_class_raises():
    classes = [[MCKPItem(5, 1.0)]]
    with pytest.raises(ValueError):
        mckp_dp(classes, 3)


def test_dp_empty_class_raises():
    with pytest.raises(ValueError):
        mckp_dp([[]], 3)


def test_dp_negative_capacity_raises():
    with pytest.raises(ValueError):
        mckp_dp([[MCKPItem(0, 0.0)]], -1)


def test_item_validation():
    with pytest.raises(ValueError):
        MCKPItem(-1, 1.0)
    with pytest.raises(ValueError):
        MCKPItem(1, -1.0)


def test_greedy_optimal_on_concave_classes():
    fns = [LogUtility(2.0, 1.0, CAP), LogUtility(1.0, 1.0, CAP)]
    classes = utilities_to_classes(fns, 10)
    g = mckp_greedy(classes, 10)
    d = mckp_dp(classes, 10)
    assert g.total_value == pytest.approx(d.total_value, rel=1e-9)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=1 << 30))
def test_greedy_never_exceeds_dp_and_is_feasible(seed):
    rng = np.random.default_rng(seed)
    classes = _random_classes(rng, int(rng.integers(1, 4)), int(rng.integers(1, 4)))
    cap = int(rng.integers(2, 12))
    g = mckp_greedy(classes, cap)
    d = mckp_dp(classes, cap)
    assert g.total_weight <= cap
    assert g.total_value <= d.total_value + 1e-9


def test_greedy_matches_fox_for_utilities():
    """Single-server AA: MCKP-greedy == Fox greedy == DP for concave classes."""
    fns = [LogUtility(3.0, 1.0, CAP), LogUtility(1.0, 2.0, CAP), LinearUtility(0.3, CAP)]
    classes = utilities_to_classes(fns, 8)
    g = mckp_greedy(classes, 8)
    f = fox_greedy(fns, 8)
    assert g.total_value == pytest.approx(f.total_utility, rel=1e-9)


def test_utilities_to_classes_shapes():
    fns = [LinearUtility(1.0, CAP)]
    classes = utilities_to_classes(fns, 4, unit=2.0)
    assert len(classes) == 1
    assert [it.weight for it in classes[0]] == [0, 1, 2, 3, 4]
    # Values are f(min(k*unit, cap)).
    assert classes[0][4].value == pytest.approx(8.0)


def test_utilities_to_classes_rejects_negative_capacity():
    with pytest.raises(ValueError):
        utilities_to_classes([LinearUtility(1.0, CAP)], -1)
