"""Galil-style discrete bisection: agreement with Fox's exact greedy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation.fox import fox_greedy
from repro.allocation.galil import galil_discrete
from repro.utility.functions import (
    CappedLinearUtility,
    LinearUtility,
    LogUtility,
    PowerUtility,
)

from tests.conftest import utility_lists

CAP = 10.0


@settings(max_examples=40, deadline=None)
@given(utility_lists(1, 6), st.integers(min_value=0, max_value=20))
def test_matches_fox_total_utility(fns, budget):
    a = galil_discrete(fns, budget)
    b = fox_greedy(fns, budget)
    assert a.total_utility == pytest.approx(b.total_utility, rel=1e-9, abs=1e-9)


def test_budget_respected():
    fns = [LogUtility(c, 1.0, CAP) for c in (1, 2, 3, 4)]
    res = galil_discrete(fns, 15)
    assert res.total_units <= 15


def test_spends_budget_when_marginals_positive():
    fns = [LogUtility(c, 1.0, CAP) for c in (1, 2, 3, 4)]
    res = galil_discrete(fns, 15)
    assert res.total_units == 15


def test_stops_at_zero_marginals():
    fns = [CappedLinearUtility(1.0, 3.0, CAP), CappedLinearUtility(2.0, 2.0, CAP)]
    res = galil_discrete(fns, 18)
    assert res.units.tolist() == [3, 2]


def test_slack_budget_gives_all_useful_units():
    fns = [LinearUtility(1.0, 4.0), LinearUtility(2.0, 3.0)]
    res = galil_discrete(fns, 100)
    assert res.units.tolist() == [4, 3]


def test_tie_handling_exact_at_threshold():
    # Two identical linear threads, budget forces a split of tied units.
    fns = [LinearUtility(1.0, 5.0), LinearUtility(1.0, 5.0)]
    res = galil_discrete(fns, 7)
    assert res.total_units == 7
    assert res.total_utility == pytest.approx(7.0)


def test_empty_and_zero():
    assert galil_discrete([], 5).units.shape == (0,)
    assert galil_discrete([LinearUtility(1.0, CAP)], 0).total_units == 0


def test_rejects_bad_args():
    with pytest.raises(ValueError):
        galil_discrete([LinearUtility(1.0, CAP)], -2)
    with pytest.raises(ValueError):
        galil_discrete([LinearUtility(1.0, CAP)], 2, unit=-1.0)


def test_fractional_unit_matches_fox():
    fns = [PowerUtility(1.0, 0.5, CAP), LogUtility(2.0, 1.0, CAP)]
    a = galil_discrete(fns, 12, unit=0.5)
    b = fox_greedy(fns, 12, unit=0.5)
    assert a.total_utility == pytest.approx(b.total_utility, rel=1e-9)


def test_large_budget_performance_shape():
    """Bisection work grows with log(budget), not budget (smoke check)."""
    fns = [LogUtility(float(c), 1.0, 1000.0) for c in range(1, 9)]
    res = galil_discrete(fns, 4000, unit=0.25)
    assert res.total_units == 4000
