"""Fox greedy discrete allocator: exactness and edge cases."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation.fox import fox_greedy
from repro.utility.batch import GenericBatch
from repro.utility.functions import (
    CappedLinearUtility,
    LinearUtility,
    LogUtility,
    PowerUtility,
)

from tests.conftest import utility_lists

CAP = 10.0


def _brute_force_best(fns, budget_units, unit=1.0):
    """Enumerate all integer splits (tiny instances only)."""
    batch = GenericBatch(fns)
    n = len(fns)
    best = -1.0
    for combo in itertools.product(range(budget_units + 1), repeat=n):
        if sum(combo) > budget_units:
            continue
        alloc = np.minimum(np.array(combo, dtype=float) * unit, batch.caps)
        best = max(best, batch.total(alloc))
    return best


def test_matches_brute_force_small():
    fns = [LogUtility(1.0, 1.0, CAP), PowerUtility(1.0, 0.5, CAP), LinearUtility(0.4, CAP)]
    res = fox_greedy(fns, 6)
    assert res.total_utility == pytest.approx(_brute_force_best(fns, 6), rel=1e-9)


@settings(max_examples=25, deadline=None)
@given(utility_lists(1, 3), st.integers(min_value=0, max_value=5))
def test_matches_brute_force_property(fns, budget):
    res = fox_greedy(fns, budget)
    assert res.total_utility == pytest.approx(
        _brute_force_best(fns, budget), rel=1e-9, abs=1e-9
    )


def test_units_respect_budget():
    fns = [LogUtility(c, 1.0, CAP) for c in (1, 2, 3)]
    res = fox_greedy(fns, 7)
    assert res.total_units <= 7


def test_zero_budget():
    res = fox_greedy([LinearUtility(1.0, CAP)], 0)
    assert res.total_units == 0
    assert res.total_utility == 0.0


def test_empty_threads():
    res = fox_greedy([], 5)
    assert res.units.shape == (0,)


def test_negative_budget_rejected():
    with pytest.raises(ValueError):
        fox_greedy([LinearUtility(1.0, CAP)], -1)


def test_bad_unit_rejected():
    with pytest.raises(ValueError):
        fox_greedy([LinearUtility(1.0, CAP)], 3, unit=0.0)


def test_stops_at_zero_marginals():
    fns = [CappedLinearUtility(1.0, 2.0, CAP)]
    res = fox_greedy(fns, 9)
    # Beyond the breakpoint the marginal is zero; greedy should stop at 2.
    assert res.units[0] == 2
    assert res.total_utility == pytest.approx(2.0)


def test_respects_caps():
    fns = [LinearUtility(5.0, 3.0), LinearUtility(1.0, CAP)]
    res = fox_greedy(fns, 8)
    assert res.allocations[0] <= 3.0 + 1e-12


def test_fractional_unit():
    fns = [LogUtility(1.0, 1.0, CAP), LogUtility(1.0, 1.0, CAP)]
    res = fox_greedy(fns, 8, unit=0.5)
    assert res.allocations == pytest.approx([2.0, 2.0])


def test_prefers_steeper_thread_first():
    fns = [LinearUtility(1.0, CAP), LinearUtility(2.0, CAP)]
    res = fox_greedy(fns, 4)
    assert res.units[1] == 4
    assert res.units[0] == 0
