"""Price-discovery solver: oracle parity, certificates, batch identity.

The solver's contract has two regimes.  On arbitrary tiny instances it
only promises feasibility (prefix packing is crude when one thread's
demand rivals a whole server), so the universal hypothesis properties
here assert the *guaranteed* invariants: validity, capacity respect,
convergence of the price iteration, scalar/batch bit-identity.  In the
regime it was built for — many threads per server, thread caps well
below pooled capacity (the paper's workload shape) — it tracks the
Algorithm-2 oracle closely, and the oracle-parity tests pin calibrated
rtols there (worst observed gap ≈ 2.9% at beta 8 over uniform/normal;
≈ 0.3% by m = 64).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation import (
    discover_price,
    discover_prices_batch,
    pack_demands_batch,
    price_discovery_batch_kernel,
)
from repro.core.batch import BatchProblem
from repro.core.solve import solve
from repro.engine import SolveContext, SolveTimeout, get_solver, run_solver
from repro.observability import (
    PRICE_CONVERGENCE_RESIDUAL,
    PRICE_ITERATIONS,
    PRICE_UPDATE_ITERATIONS,
)
from repro.utility.batch import as_batch
from repro.utility.functions import LinearUtility, LogUtility, ZeroUtility
from repro.workloads.generators import make_distribution, make_problem

from tests.conftest import aa_problems

DISTS = {name: make_distribution(name) for name in ("uniform", "normal")}


def _paper_problem(dist_name, m, beta, seed):
    return make_problem(DISTS[dist_name], n_servers=m, beta=beta, seed=seed)


# -- universal invariants (any instance) ------------------------------------


@settings(max_examples=40, deadline=None)
@given(aa_problems(max_threads=10, max_servers=4))
def test_always_feasible(problem):
    a = run_solver("price_discovery", problem).assignment
    a.validate(problem)
    assert np.all(a.allocations >= 0.0)
    assert np.all(a.server_loads(problem.n_servers) <= problem.capacity + 1e-9)


@settings(max_examples=25, deadline=None)
@given(aa_problems(max_threads=8, max_servers=3))
def test_scalar_equals_one_trial_batch(problem):
    scalar = run_solver("price_discovery", problem).assignment
    bp = BatchProblem(
        problem.utilities,
        n_trials=1,
        n_servers=problem.n_servers,
        capacity=problem.capacity,
    )
    batch = price_discovery_batch_kernel(bp)
    assert np.array_equal(scalar.servers, batch.servers[0])
    assert np.array_equal(scalar.allocations, batch.allocations[0])


# -- oracle parity in the target regime -------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    dist_name=st.sampled_from(sorted(DISTS)),
    m=st.integers(min_value=4, max_value=16),
    beta=st.floats(min_value=6.0, max_value=10.0),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_utility_within_rtol_of_alg2_oracle(dist_name, m, beta, seed):
    problem = _paper_problem(dist_name, m, beta, seed)
    oracle = run_solver("alg2", problem).assignment.total_utility(problem)
    priced = run_solver("price_discovery", problem)
    priced.assignment.validate(problem)
    utility = priced.assignment.total_utility(problem)
    assert utility >= oracle * (1.0 - 0.05)


def test_large_instance_tracks_oracle_within_one_percent():
    problem = _paper_problem("uniform", 64, 8.0, 123)
    oracle = run_solver("alg2", problem).assignment.total_utility(problem)
    utility = run_solver("price_discovery", problem).assignment.total_utility(problem)
    assert utility >= oracle * 0.99


def test_certified_through_solve_facade():
    problem = _paper_problem("uniform", 16, 8.0, 7)
    sol = solve(problem, algorithm="price_discovery")
    assert sol.algorithm == "price_discovery"
    assert 0.95 <= sol.certified_ratio <= 1.0 + 1e-9


def test_per_server_refill_is_kkt_optimal():
    from repro.allocation import kkt_violation

    problem = _paper_problem("uniform", 16, 8.0, 3)
    a = run_solver("price_discovery", problem).assignment
    for j in range(problem.n_servers):
        members = np.where(a.servers == j)[0]
        if members.size == 0:
            continue
        load = float(a.allocations[members].sum())
        sub = problem.utilities.subset(members)
        assert kkt_violation(sub, a.allocations[members], load) <= 1e-3


# -- the price iteration itself ---------------------------------------------


def test_discover_price_clears_the_budget():
    fns = [LogUtility(1.0 + i, 1.0, 10.0) for i in range(12)]
    res = discover_price(fns, 30.0)
    assert res.allocations.shape == (12,)
    assert res.total_utility > 0.0
    assert res.price > 0.0
    assert res.residual <= 1e-6
    assert abs(res.allocations.sum() - 30.0) <= 30.0 * 1e-6 + 1e-9


def test_discover_price_slack_budget_grants_caps():
    fns = [LinearUtility(2.0, 5.0), LinearUtility(1.0, 5.0)]
    res = discover_price(fns, 100.0)
    assert np.allclose(res.allocations, [5.0, 5.0])
    assert res.price == 0.0
    assert res.iterations == 0


def test_discover_price_zero_budget():
    fns = [LinearUtility(3.0, 5.0), ZeroUtility(5.0)]
    res = discover_price(fns, 0.0)
    assert np.all(res.allocations == 0.0)
    assert res.total_utility == 0.0
    assert res.price >= 3.0  # at least the steepest opening marginal


def test_discover_price_rejects_bad_knobs():
    fns = [LinearUtility(1.0, 1.0)]
    with pytest.raises(ValueError):
        discover_price(fns, -1.0)
    with pytest.raises(ValueError):
        discover_price(fns, 1.0, rel_tol=0.0)
    with pytest.raises(ValueError):
        discover_price(fns, 1.0, damping=0.0)
    with pytest.raises(ValueError):
        discover_price(fns, 1.0, max_iter=0)


def test_discover_prices_batch_matches_scalar_loop():
    batches = [
        as_batch([LogUtility(1.0 + i + t, 1.0, 8.0) for i in range(6)])
        for t in range(3)
    ]
    fns = []
    for b in batches:
        fns.extend(b.functions())
    stacked = as_batch(fns)
    budgets = np.array([10.0, 14.0, 18.0])
    res = discover_prices_batch(stacked, 3, budgets)
    for t, b in enumerate(batches):
        single = discover_price(b, float(budgets[t]))
        assert np.array_equal(single.allocations, res.allocations[t])
        assert single.price == res.price[t]
        assert single.iterations == res.iterations[t]


# -- packing ----------------------------------------------------------------


def test_pack_demands_respects_capacity_and_demands():
    rng = np.random.default_rng(0)
    demands = rng.uniform(0.0, 4.0, (5, 40))
    servers, alloc = pack_demands_batch(demands, n_servers=6, capacity=10.0)
    assert servers.shape == alloc.shape == demands.shape
    assert np.all((servers >= 0) & (servers < 6))
    assert np.all(alloc >= 0.0)
    assert np.all(alloc <= demands + 1e-12)
    for t in range(5):
        loads = np.bincount(servers[t], weights=alloc[t], minlength=6)
        assert np.all(loads <= 10.0 + 1e-9)
        # Only boundary-straddling threads lose anything, at most one per
        # server boundary (the refill stage recovers the clipped utility).
        total = float(demands[t].sum())
        packed = float(alloc[t].sum())
        assert packed <= min(total, 60.0) + 1e-9
        assert packed >= min(total, 60.0) - 5 * float(demands[t].max())


def test_pack_demands_exact_when_one_server_suffices():
    rng = np.random.default_rng(1)
    demands = rng.uniform(0.0, 0.3, (4, 30))  # totals < one server's 10.0
    servers, alloc = pack_demands_batch(demands, n_servers=3, capacity=10.0)
    assert np.array_equal(alloc, demands)
    assert np.all(servers == 0)


# -- batch twin, counters, observability -------------------------------------


def test_batch_twin_bit_identical_and_counter_parity():
    problems = [_paper_problem("uniform", 8, 8.0, 200 + s) for s in range(3)]
    bp = BatchProblem.from_problems(problems)
    ctx_b = SolveContext()
    batch = price_discovery_batch_kernel(bp, ctx_b)
    summed = {}
    for t, problem in enumerate(problems):
        ctx_s = SolveContext()
        scalar = run_solver("price_discovery", problem, ctx=ctx_s).assignment
        assert np.array_equal(scalar.servers, batch.servers[t])
        assert np.array_equal(scalar.allocations, batch.allocations[t])
        for name, value in ctx_s.counters.items():
            summed[name] = summed.get(name, 0) + value
    # Lock-step batch totals are exactly the per-trial scalar sums.
    assert {k: v for k, v in ctx_b.counters.items()} == summed


def test_counters_and_histogram_recorded():
    from repro.observability import MetricsRegistry

    problem = _paper_problem("uniform", 8, 8.0, 11)
    ctx = SolveContext(metrics=MetricsRegistry())
    run_solver("price_discovery", problem, ctx=ctx)
    assert ctx.counters[PRICE_UPDATE_ITERATIONS] >= 1
    # Converged at the default 1e-6 tolerance: at most 1000 ppb recorded.
    assert 0 <= ctx.counters[PRICE_CONVERGENCE_RESIDUAL] <= 1000
    hist = ctx.metrics.histogram(PRICE_ITERATIONS)
    assert hist.count == 1
    assert hist.snapshot()["sum"] == ctx.counters[PRICE_UPDATE_ITERATIONS]


def test_solve_span_traced():
    problem = _paper_problem("uniform", 4, 8.0, 5)
    ctx = SolveContext()
    run_solver("price_discovery", problem, ctx=ctx)
    spans = ctx.spans.snapshot()
    assert "solve.price_discovery" in spans
    assert "price" in spans
    assert "reclaim" in spans


def test_deadline_abandon_mid_iteration():
    problem = _paper_problem("uniform", 64, 8.0, 9)
    with pytest.raises(SolveTimeout):
        run_solver("price_discovery", problem, ctx=SolveContext(budget_s=1e-9))


# -- registry ----------------------------------------------------------------


def test_registry_spec_contract():
    spec = get_solver("price_discovery")
    assert spec.kind == "extension"
    assert spec.reclaim is False  # the refill stage IS its reclamation
    assert spec.uses_linearization is False
    assert spec.batch_fn is not None
