"""Grouped water-filling: exact agreement with per-group scalar water-fill."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation.grouped import water_fill_grouped
from repro.allocation.waterfill import water_fill
from repro.utility.batch import GenericBatch, PowerBatch, QuadSplineBatch
from repro.utility.functions import LinearUtility, LogUtility, PowerUtility

from tests.conftest import utility_lists

CAP = 10.0


def _reference(batch, groups, budgets):
    """Per-group scalar water-fill (the slow, known-correct path)."""
    alloc = np.zeros(len(batch))
    for g in range(len(budgets)):
        members = np.nonzero(groups == g)[0]
        if members.size == 0:
            continue
        res = water_fill(batch.subset(members), float(budgets[g]))
        alloc[members] = res.allocations
    return alloc


def test_matches_scalar_fixed_instance():
    fns = [LogUtility(float(c), 1.0, CAP) for c in (1, 2, 3, 4, 5, 6)]
    batch = GenericBatch(fns)
    groups = np.array([0, 0, 1, 1, 2, 2])
    budgets = np.array([8.0, 5.0, 12.0])
    grouped = water_fill_grouped(batch, groups, budgets)
    ref = _reference(batch, groups, budgets)
    assert grouped.allocations == pytest.approx(ref, abs=1e-6)
    assert grouped.total_utility == pytest.approx(batch.total(ref), rel=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    utility_lists(1, 8),
    st.lists(st.floats(min_value=0.0, max_value=40.0), min_size=1, max_size=4),
    st.data(),
)
def test_matches_scalar_property(fns, budgets, data):
    batch = GenericBatch(fns)
    k = len(budgets)
    groups = np.array(
        [data.draw(st.integers(min_value=0, max_value=k - 1)) for _ in fns]
    )
    budgets = np.asarray(budgets)
    grouped = water_fill_grouped(batch, groups, budgets)
    ref = _reference(batch, groups, budgets)
    assert grouped.total_utility == pytest.approx(
        batch.total(ref), rel=1e-6, abs=1e-6
    )
    loads = np.bincount(groups, weights=grouped.allocations, minlength=k)
    assert np.all(loads <= budgets + 1e-6 * np.maximum(budgets, 1.0))


def test_vectorized_batches_closed_form_paths():
    rng = np.random.default_rng(0)
    v = rng.uniform(0.5, 3.0, 12)
    batch = QuadSplineBatch(v, v * rng.uniform(0, 1, 12), CAP)
    groups = rng.integers(0, 3, 12)
    budgets = np.array([10.0, 20.0, 5.0])
    grouped = water_fill_grouped(batch, groups, budgets)
    ref = _reference(batch, groups, budgets)
    assert grouped.allocations == pytest.approx(ref, abs=1e-6)


def test_power_batch_infinite_derivative():
    batch = PowerBatch(np.full(6, 1.0), np.full(6, 0.5), CAP)
    groups = np.array([0, 0, 0, 1, 1, 1])
    budgets = np.array([6.0, 3.0])
    grouped = water_fill_grouped(batch, groups, budgets)
    assert grouped.allocations[:3] == pytest.approx(np.full(3, 2.0), rel=1e-6)
    assert grouped.allocations[3:] == pytest.approx(np.full(3, 1.0), rel=1e-6)


def test_zero_budget_group():
    fns = [PowerUtility(1.0, 0.5, CAP), PowerUtility(1.0, 0.5, CAP)]
    groups = np.array([0, 1])
    grouped = water_fill_grouped(fns, groups, np.array([0.0, 4.0]))
    assert grouped.allocations[0] == 0.0
    assert grouped.allocations[1] == pytest.approx(4.0)


def test_empty_group_leaves_budget_unused():
    fns = [LinearUtility(1.0, CAP)]
    grouped = water_fill_grouped(fns, np.array([0]), np.array([5.0, 7.0]))
    assert grouped.allocations[0] == pytest.approx(5.0)
    assert grouped.group_utilities[1] == 0.0


def test_slack_budget_saturates_caps():
    fns = [LogUtility(1.0, 1.0, 2.0), LogUtility(1.0, 1.0, 3.0)]
    grouped = water_fill_grouped(fns, np.array([0, 0]), np.array([100.0]))
    assert grouped.allocations == pytest.approx([2.0, 3.0])


def test_group_utilities_partition_total():
    fns = [LogUtility(float(c), 1.0, CAP) for c in (1, 2, 3)]
    grouped = water_fill_grouped(fns, np.array([0, 1, 1]), np.array([5.0, 5.0]))
    assert float(np.sum(grouped.group_utilities)) == pytest.approx(
        grouped.total_utility
    )


def test_validation_errors():
    fns = [LinearUtility(1.0, CAP)]
    with pytest.raises(ValueError):
        water_fill_grouped(fns, np.array([0, 1]), np.array([1.0]))
    with pytest.raises(ValueError):
        water_fill_grouped(fns, np.array([2]), np.array([1.0]))
    with pytest.raises(ValueError):
        water_fill_grouped(fns, np.array([0]), np.array([-1.0]))
    with pytest.raises(ValueError):
        water_fill_grouped(fns, np.array([0]), np.array([[1.0]]))


def test_empty_threads():
    grouped = water_fill_grouped([], np.zeros(0, dtype=int), np.array([5.0]))
    assert grouped.allocations.shape == (0,)
    assert grouped.total_utility == 0.0
