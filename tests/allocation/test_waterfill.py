"""Water-filling: KKT optimality, budget handling, degenerate cases."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation.waterfill import kkt_violation, water_fill
from repro.utility.batch import GenericBatch, PowerBatch, QuadSplineBatch
from repro.utility.functions import (
    CappedLinearUtility,
    LinearUtility,
    LogUtility,
    PowerUtility,
    ZeroUtility,
)

from tests.conftest import assert_allocation_optimal, utility_lists

CAP = 10.0


def test_two_identical_logs_split_evenly():
    fns = [LogUtility(1.0, 1.0, CAP), LogUtility(1.0, 1.0, CAP)]
    res = water_fill(fns, 6.0)
    assert res.allocations == pytest.approx([3.0, 3.0])


def test_budget_fully_spent_when_binding():
    fns = [LogUtility(c, 1.0, CAP) for c in (1.0, 2.0, 3.0)]
    res = water_fill(fns, 8.0)
    assert float(np.sum(res.allocations)) == pytest.approx(8.0)


def test_marginals_equalized_at_interior_optimum():
    fns = [LogUtility(1.0, 1.0, CAP), LogUtility(4.0, 1.0, CAP)]
    res = water_fill(fns, 5.0)
    batch = GenericBatch(fns)
    d = batch.derivative(res.allocations)
    assert d[0] == pytest.approx(d[1], rel=1e-6)


def test_known_closed_form_two_logs():
    # f1 = log(1+x), f2 = 4 log(1+x); equal marginals: 1/(1+c1) = 4/(1+c2)
    fns = [LogUtility(1.0, 1.0, 100.0), LogUtility(4.0, 1.0, 100.0)]
    res = water_fill(fns, 8.0)
    # c1 + c2 = 8 and 1 + c2 = 4 (1 + c1)  =>  c1 = 1, c2 = 7
    assert res.allocations == pytest.approx([1.0, 7.0], abs=1e-6)


def test_slack_budget_saturates_caps():
    fns = [LogUtility(1.0, 1.0, 2.0), LogUtility(1.0, 1.0, 3.0)]
    res = water_fill(fns, 100.0)
    assert res.allocations == pytest.approx([2.0, 3.0])
    assert res.marginal_price == 0.0


def test_zero_budget():
    res = water_fill([LogUtility(1.0, 1.0, CAP)], 0.0)
    assert res.allocations == pytest.approx([0.0])
    assert res.total_utility == pytest.approx(0.0)


def test_empty_batch():
    res = water_fill([], 5.0)
    assert res.allocations.shape == (0,)
    assert res.total_utility == 0.0


def test_negative_budget_rejected():
    with pytest.raises(ValueError):
        water_fill([LinearUtility(1.0, CAP)], -1.0)


def test_infinite_budget_rejected():
    with pytest.raises(ValueError):
        water_fill([LinearUtility(1.0, CAP)], np.inf)


def test_linear_utilities_prefer_steepest():
    fns = [LinearUtility(1.0, CAP), LinearUtility(3.0, CAP)]
    res = water_fill(fns, CAP)
    # All budget to the slope-3 thread.
    assert res.allocations[1] == pytest.approx(CAP)
    assert res.allocations[0] == pytest.approx(0.0)


def test_capped_linear_tie_splits_arbitrarily_but_optimally():
    fns = [CappedLinearUtility(2.0, 4.0, CAP), CappedLinearUtility(2.0, 4.0, CAP)]
    res = water_fill(fns, 6.0)
    assert float(np.sum(res.allocations)) == pytest.approx(6.0)
    # Equal slopes below breakpoints: any split with both <= 4 is optimal.
    assert np.all(res.allocations <= 4.0 + 1e-9)
    assert res.total_utility == pytest.approx(12.0)


def test_power_utilities_infinite_derivative_at_zero():
    fns = [PowerUtility(1.0, 0.5, CAP), PowerUtility(1.0, 0.5, CAP)]
    res = water_fill(fns, 4.0)
    assert res.allocations == pytest.approx([2.0, 2.0], rel=1e-6)


def test_equal_power_threads_split_evenly_many():
    batch = PowerBatch(np.full(5, 2.0), np.full(5, 0.6), CAP)
    res = water_fill(batch, 10.0)
    assert res.allocations == pytest.approx(np.full(5, 2.0), rel=1e-6)


def test_zero_utility_thread_gets_leftovers_only():
    fns = [ZeroUtility(CAP), LogUtility(5.0, 1.0, CAP)]
    res = water_fill(fns, 5.0)
    assert res.allocations[1] == pytest.approx(5.0)


def test_result_reports_iterations_and_price():
    fns = [LogUtility(1.0, 1.0, CAP), LogUtility(2.0, 1.0, CAP)]
    res = water_fill(fns, 5.0)
    assert res.iterations > 0
    assert res.marginal_price > 0


@settings(max_examples=60, deadline=None)
@given(utility_lists(1, 6), st.floats(min_value=0.0, max_value=60.0))
def test_waterfill_satisfies_kkt_property(fns, budget):
    batch = GenericBatch(fns)
    res = water_fill(batch, budget)
    assert np.all(res.allocations >= -1e-12)
    assert np.all(res.allocations <= batch.caps + 1e-9)
    assert float(np.sum(res.allocations)) <= budget + 1e-6 * max(budget, 1.0)
    assert_allocation_optimal(batch, res.allocations, budget, tol=1e-5)


@settings(max_examples=40, deadline=None)
@given(utility_lists(2, 6), st.floats(min_value=1.0, max_value=40.0))
def test_value_of_budget_is_monotone(fns, budget):
    """More budget never hurts (utilities are nondecreasing)."""
    lo = water_fill(fns, budget * 0.5).total_utility
    hi = water_fill(fns, budget).total_utility
    assert hi >= lo - 1e-8 * (1 + abs(hi))


@settings(max_examples=40, deadline=None)
@given(utility_lists(2, 6), st.floats(min_value=1.0, max_value=40.0))
def test_permutation_invariance(fns, budget):
    """Total utility does not depend on thread order."""
    a = water_fill(fns, budget).total_utility
    b = water_fill(list(reversed(fns)), budget).total_utility
    assert a == pytest.approx(b, rel=1e-9, abs=1e-9)


def test_quadspline_batch_waterfill_exact_vs_generic():
    rng = np.random.default_rng(3)
    v = rng.uniform(0.5, 3.0, 8)
    w = v * rng.uniform(0, 1, 8)
    batch = QuadSplineBatch(v, w, CAP)
    generic = GenericBatch(batch.functions())
    a = water_fill(batch, 30.0)
    b = water_fill(generic, 30.0)
    assert a.total_utility == pytest.approx(b.total_utility, rel=1e-9)
    assert a.allocations == pytest.approx(b.allocations, abs=1e-6)


def test_kkt_violation_flags_bad_allocation():
    fns = [LogUtility(1.0, 1.0, CAP), LogUtility(4.0, 1.0, CAP)]
    bad = np.array([5.0, 0.0])  # everything to the weak thread
    assert kkt_violation(fns, bad, 5.0) > 0.1


def test_kkt_violation_zero_at_optimum():
    fns = [LogUtility(1.0, 1.0, CAP), LogUtility(4.0, 1.0, CAP)]
    res = water_fill(fns, 5.0)
    assert kkt_violation(fns, res.allocations, 5.0) < 1e-6


def test_bracket_loop_honors_deadline():
    """A pathological derivative scale (~100 doublings to bracket) must hit
    the deadline *inside* the exponential bracket loop, before bisection
    ever starts — measured by the batch-evaluation counter staying tiny."""
    from repro.engine import SolveContext, SolveTimeout
    from repro.observability import BATCH_EVALUATIONS

    fns = [LogUtility(1e30, 1.0, CAP), LogUtility(1e30, 1.0, CAP)]
    ctx = SolveContext(budget_s=1e-9)
    with pytest.raises(SolveTimeout):
        water_fill(fns, 5.0, ctx=ctx)
    # Without the bracket-loop check, ~100 demand evaluations would have
    # run before the bisection loop's own deadline check fired.
    assert ctx.counters[BATCH_EVALUATIONS] <= 2
