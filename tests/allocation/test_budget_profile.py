"""Value-of-budget profile: monotone, concave, correct endpoints."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.allocation.waterfill import budget_profile, water_fill
from repro.utility.functions import LinearUtility, LogUtility

from tests.conftest import utility_lists

CAP = 10.0


def test_profile_matches_pointwise_waterfill():
    fns = [LogUtility(c, 1.0, CAP) for c in (1.0, 2.0)]
    budgets = [0.0, 3.0, 7.0]
    prof = budget_profile(fns, budgets)
    for b, v in zip(budgets, prof):
        assert v == pytest.approx(water_fill(fns, b).total_utility)


def test_profile_zero_budget_zero_value():
    prof = budget_profile([LogUtility(1.0, 1.0, CAP)], [0.0])
    assert prof[0] == pytest.approx(0.0)


def test_profile_saturates_at_cap_sum():
    fns = [LinearUtility(2.0, 3.0), LinearUtility(1.0, 4.0)]
    prof = budget_profile(fns, [7.0, 100.0])
    assert prof[0] == pytest.approx(prof[1]) == pytest.approx(10.0)


@settings(max_examples=30, deadline=None)
@given(utility_lists(1, 5))
def test_profile_monotone_and_concave(fns):
    budgets = np.linspace(0.0, 30.0, 13)
    prof = budget_profile(fns, budgets)
    scale = 1e-7 * (1.0 + abs(float(prof[-1])))
    assert np.all(np.diff(prof) >= -scale)
    mid = 0.5 * (prof[:-2] + prof[2:])
    assert np.all(prof[1:-1] >= mid - scale)
