"""Figure registry and qualitative shape checks (fast, low-trial smoke)."""

import pytest

from repro.experiments.figures import (
    BETA_SWEEP,
    FIGURES,
    expected_shape_violations,
    run_figure,
)
from repro.experiments.harness import SO


def test_all_panels_registered():
    assert set(FIGURES) == {
        "fig1a",
        "fig1b",
        "fig2a",
        "fig2b",
        "fig3a",
        "fig3b",
        "fig3c",
    }


def test_beta_sweep_matches_paper():
    assert BETA_SWEEP == tuple(range(1, 16))


def test_specs_have_factories():
    for spec in FIGURES.values():
        dist, beta = spec.factory(spec.sweep[0])
        assert beta > 0
        assert hasattr(dist, "sample")


def test_run_figure_small_smoke():
    pts = run_figure("fig1a", trials=2, seed=0)
    assert len(pts) == len(BETA_SWEEP)
    for p in pts:
        assert 0.8 <= p.ratios[SO] <= 1.0 + 1e-9


def test_unknown_figure_raises():
    with pytest.raises(KeyError):
        run_figure("fig9z", trials=1)


def test_shape_checker_flags_fabricated_regression():
    """Feed the checker series that violate every claim and expect noise."""
    from repro.experiments.harness import SweepPoint

    bad = [
        SweepPoint(
            value=float(b),
            ratios={SO: 0.5, "UU": 0.9, "UR": 0.9, "RU": 0.9, "RR": 0.9},
            trials=1,
        )
        for b in BETA_SWEEP
    ]
    violations = expected_shape_violations("fig1a", bad)
    assert any("Alg2/SO" in v for v in violations)
    assert any("dipped below 1" in v for v in violations)


@pytest.mark.slow
def test_fig3c_shape_holds_at_moderate_trials():
    pts = run_figure("fig3c", trials=25, seed=0)
    assert expected_shape_violations("fig3c", pts) == []
