"""Plain-text reporting of sweeps."""

from repro.experiments.harness import SO, SweepPoint
from repro.experiments.report import (
    series_table,
    spark_table,
    sparkline,
    summarize_headlines,
)


def _points():
    return [
        SweepPoint(value=1.0, ratios={SO: 0.999, "UU": 1.0, "RR": 1.3}, trials=10),
        SweepPoint(value=2.0, ratios={SO: 0.998, "UU": 1.1, "RR": 1.4}, trials=10),
    ]


def test_series_table_contains_rows_and_columns():
    out = series_table(_points(), x_label="beta")
    assert "alg2/SO" in out
    assert "alg2/UU" in out
    assert "0.9990" in out
    assert "1.4000" in out
    assert "10 trials" in out


def test_series_table_column_order_bound_first():
    out = series_table(_points())
    header = out.splitlines()[0]
    assert header.index("SO") < header.index("UU") < header.index("RR")


def test_series_table_empty():
    assert series_table([]) == "(no data)"


def test_sparkline_monotone_series():
    s = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
    assert s[0] == "▁"
    assert s[-1] == "█"
    assert len(s) == 8


def test_sparkline_flat_series():
    assert sparkline([2.0, 2.0, 2.0]) == "▄▄▄"


def test_sparkline_pinned_scale():
    s = sparkline([0.5], lo=0.0, hi=1.0)
    assert s in "▄▅"


def test_sparkline_empty():
    assert sparkline([]) == ""


def test_spark_table_lists_all_series():
    out = spark_table(_points())
    assert "alg2/SO" in out and "alg2/RR" in out
    assert "[" in out and "…" in out


def test_spark_table_empty():
    assert spark_table([]) == "(no data)"


def test_headlines_reports_worst_so():
    panels = {"fig1a": _points()}
    out = summarize_headlines(panels)
    assert "0.9980" in out


def test_headlines_power_law_multipliers():
    pts = [
        SweepPoint(
            value=15.0,
            ratios={SO: 0.999, "UU": 3.5, "RU": 3.4, "UR": 5.0, "RR": 5.2},
            trials=10,
        )
    ]
    out = summarize_headlines({"fig2a": pts})
    assert "3.50x UU/RU" in out
    assert "5.20x UR/RR" in out
