"""Experiment harness: trial records, ratios, sweeps, reproducibility."""

import numpy as np
import pytest

from repro.core.problem import ALPHA
from repro.experiments.harness import (
    ALG2,
    ALG2RAW,
    SO,
    TrialRecord,
    run_point,
    run_sweep,
    run_trial,
)
from repro.workloads.generators import UniformDistribution, make_problem

DIST = UniformDistribution()


def test_trial_record_ratio():
    rec = TrialRecord(utilities={ALG2: 8.0, SO: 10.0, "UU": 4.0}, n_threads=5)
    assert rec.ratio(SO) == pytest.approx(0.8)
    assert rec.ratio("UU") == pytest.approx(2.0)


def test_trial_record_zero_division():
    rec = TrialRecord(utilities={ALG2: 0.0, SO: 0.0, "UU": 1.0}, n_threads=1)
    assert rec.ratio(SO) == 1.0
    rec2 = TrialRecord(utilities={ALG2: 1.0, "UU": 0.0}, n_threads=1)
    assert rec2.ratio("UU") == np.inf


def test_run_trial_contains_all_series(rng):
    p = make_problem(DIST, 4, 3, 100.0, seed=rng)
    rec = run_trial(p, rng, include_alg1=True, include_raw=True)
    assert {SO, ALG2, "ALG1", ALG2RAW, "UU", "UR", "RU", "RR"} <= set(rec.utilities)


def test_run_trial_alg2_within_bound(rng):
    p = make_problem(DIST, 4, 3, 100.0, seed=rng)
    rec = run_trial(p, rng)
    assert rec.utilities[ALG2] <= rec.utilities[SO] + 1e-6
    assert rec.utilities[ALG2] >= ALPHA * rec.utilities[SO] - 1e-6


def test_run_trial_reclaim_beats_raw(rng):
    p = make_problem(DIST, 4, 5, 100.0, seed=rng)
    rec = run_trial(p, rng, include_raw=True)
    assert rec.utilities[ALG2] >= rec.utilities[ALG2RAW] - 1e-9


def test_run_point_mean_ratios():
    r = run_point(DIST, 4, 3, 100.0, trials=5, seed=0)
    assert set(r) >= {SO, "UU", "UR", "RU", "RR"}
    assert 0.9 <= r[SO] <= 1.0 + 1e-9
    for h in ("UU", "UR", "RU", "RR"):
        assert r[h] >= 0.99  # Alg2 should not lose on average


def test_run_point_reproducible():
    a = run_point(DIST, 4, 3, 100.0, trials=4, seed=7)
    b = run_point(DIST, 4, 3, 100.0, trials=4, seed=7)
    assert a == b


def test_run_point_seed_matters():
    a = run_point(DIST, 4, 3, 100.0, trials=4, seed=1)
    b = run_point(DIST, 4, 3, 100.0, trials=4, seed=2)
    assert a != b


def test_run_point_rejects_zero_trials():
    with pytest.raises(ValueError):
        run_point(DIST, 4, 3, 100.0, trials=0)


def test_run_sweep_beta_factory():
    pts = run_sweep(
        lambda beta: (DIST, float(beta)),
        sweep_values=(1, 2),
        n_servers=4,
        capacity=100.0,
        trials=3,
        seed=0,
    )
    assert [p.value for p in pts] == [1.0, 2.0]
    assert all(p.trials == 3 for p in pts)


def test_run_sweep_fixed_beta_override():
    pts = run_sweep(
        lambda theta: (DIST, 99.0),  # factory beta ignored when beta= given
        sweep_values=(0.5,),
        beta=2.0,
        n_servers=4,
        capacity=100.0,
        trials=2,
        seed=0,
    )
    assert len(pts) == 1
