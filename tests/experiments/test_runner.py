"""Result persistence round-trips."""

import json

import pytest

from repro.experiments.harness import SweepPoint
from repro.experiments.runner import (
    load_result,
    points_from_dict,
    points_to_dict,
    run_and_save,
    verify_saved_result,
)


def _points():
    return [
        SweepPoint(value=1.0, ratios={"SO": 0.999, "UU": 1.0}, trials=5),
        SweepPoint(value=2.0, ratios={"SO": 0.998, "UU": 1.1}, trials=5),
    ]


def test_dict_roundtrip():
    doc = points_to_dict("fig1a", _points(), seed=3)
    figure_id, points = points_from_dict(doc)
    assert figure_id == "fig1a"
    assert [p.value for p in points] == [1.0, 2.0]
    assert points[0].ratios["SO"] == 0.999


def test_provenance_recorded():
    doc = points_to_dict("fig2b", _points(), seed=7)
    assert doc["seed"] == 7
    assert doc["trials"] == 5
    assert "library_version" in doc


def test_bad_format_rejected():
    with pytest.raises(ValueError, match="aart-figure-result"):
        points_from_dict({"format": "nope"})


def test_run_and_save_creates_file(tmp_path):
    path = tmp_path / "fig3c.json"
    points = run_and_save("fig3c", path, trials=2, seed=0)
    assert path.exists()
    figure_id, loaded = load_result(path)
    assert figure_id == "fig3c"
    assert len(loaded) == len(points)
    for a, b in zip(points, loaded):
        assert a.ratios == pytest.approx(b.ratios)


def test_run_and_save_unknown_figure(tmp_path):
    with pytest.raises(ValueError, match="unknown figure"):
        run_and_save("fig99", tmp_path / "x.json", trials=1)


def test_verify_saved_result(tmp_path):
    path = tmp_path / "r.json"
    doc = points_to_dict("fig3c", _points(), seed=0)
    path.write_text(json.dumps(doc))
    violations = verify_saved_result(path)
    assert isinstance(violations, list)  # fabricated data may violate shape
