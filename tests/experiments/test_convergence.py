"""Trial-budget convergence tooling."""

import pytest

from repro.experiments.convergence import (
    convergence_study,
    render_convergence,
    required_trials,
)
from repro.workloads.generators import UniformDistribution

DIST = UniformDistribution()
GEOM = dict(n_servers=4, beta=3.0, capacity=100.0)


def test_study_returns_schedule():
    pts = convergence_study(DIST, trial_schedule=(4, 8), seed=1, **GEOM)
    assert [p.trials for p in pts] == [4, 8]
    for p in pts:
        assert "SO" in p.stats and "UU" in p.stats


def test_ci_shrinks_with_budget():
    pts = convergence_study(DIST, trial_schedule=(8, 128), seed=0, **GEOM)
    widths = [
        p.stats["UU"].ci95_high - p.stats["UU"].ci95_low for p in pts
    ]
    assert widths[1] < widths[0]


def test_schedule_validation():
    with pytest.raises(ValueError):
        convergence_study(DIST, trial_schedule=(1, 5), **GEOM)
    with pytest.raises(ValueError):
        convergence_study(DIST, trial_schedule=(10, 5), **GEOM)


def test_required_trials_scales_with_precision():
    coarse = required_trials(DIST, series="UU", half_width=0.05,
                             pilot_trials=20, seed=2, **GEOM)
    fine = required_trials(DIST, series="UU", half_width=0.005,
                           pilot_trials=20, seed=2, **GEOM)
    assert fine > coarse
    # Normal theory: 10x tighter CI needs ~100x the trials.
    assert fine == pytest.approx(100 * coarse, rel=0.1)


def test_required_trials_unknown_series():
    with pytest.raises(ValueError, match="unknown series"):
        required_trials(DIST, series="XYZ", half_width=0.01,
                        pilot_trials=5, seed=0, **GEOM)


def test_render_table():
    pts = convergence_study(DIST, trial_schedule=(4, 8), seed=3, **GEOM)
    out = render_convergence(pts, "SO")
    assert "trials" in out
    assert out.count("\n") == 2
