"""Sensitivity sweeps over the paper's fixed geometry knobs."""

import pytest

from repro.experiments.sensitivity import capacity_sweep, max_spread, server_sweep
from repro.workloads.generators import UniformDistribution

DIST = UniformDistribution()


def test_server_sweep_shapes():
    pts = server_sweep(DIST, m_values=(2, 4), trials=5, seed=0)
    assert [p.value for p in pts] == [2.0, 4.0]
    for p in pts:
        assert "SO" in p.ratios


def test_server_sweep_near_optimal_everywhere():
    pts = server_sweep(DIST, m_values=(2, 8), beta=4.0, trials=10, seed=1)
    for p in pts:
        assert p.ratios["SO"] >= 0.98


def test_capacity_scale_invariance():
    """Ratios are scale-free in C by construction of the generator."""
    pts = capacity_sweep(
        DIST, c_values=(10.0, 1000.0), beta=4.0, trials=30, seed=2
    )
    # Same seeds across C give statistically indistinguishable ratios;
    # with independent draws, spread should still be small.
    assert max_spread(pts, "SO") < 0.01
    assert max_spread(pts, "UU") < 0.08


def test_max_spread_accounting():
    pts = server_sweep(DIST, m_values=(2, 4), trials=4, seed=3)
    spread = max_spread(pts, "UU")
    values = [p.ratios["UU"] for p in pts]
    assert spread == pytest.approx(max(values) - min(values))
