"""Typed metrics: exact sums, instruments, registry, exposition.

The load-bearing property is *exact mergeability*: histograms and
counters recorded in worker processes must fold into the caller's
registry so that the rendered values are bit-identical to a serial run —
the hypothesis tests below drive that for arbitrary observation splits.
"""

import json
import math
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability import (
    DEFAULT_BUCKETS,
    Counter,
    ExactSum,
    Gauge,
    Histogram,
    MetricsRegistry,
    counters_to_snapshot,
    merge_snapshots,
    render_json,
    render_prometheus,
    strip_partials,
)

GOLDEN = Path(__file__).parent / "golden"

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
)


# -- ExactSum -----------------------------------------------------------------


def test_exact_sum_is_correctly_rounded():
    s = ExactSum()
    for _ in range(10):
        s.add(0.1)
    # Naive accumulation gives 0.9999999999999999; the exact sum rounds true.
    assert s.value == math.fsum([0.1] * 10)


def test_exact_sum_rejects_non_finite():
    with pytest.raises(ValueError):
        ExactSum().add(math.inf)


@given(st.lists(finite_floats, max_size=50), st.integers(min_value=0, max_value=50))
@settings(max_examples=100, deadline=None)
def test_exact_sum_merge_equals_single_stream(values, cut):
    cut = min(cut, len(values))
    whole = ExactSum(values)
    left, right = ExactSum(values[:cut]), ExactSum(values[cut:])
    left.merge(right)
    assert left.value == whole.value


# -- instruments ---------------------------------------------------------------


def test_counter_monotonic():
    c = Counter("c")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_aggregations():
    for agg, expect in (("last", 2.0), ("sum", 5.0), ("max", 3.0), ("min", 2.0)):
        a, b = Gauge("g", aggregation=agg), Gauge("g", aggregation=agg)
        a.set(3.0)
        b.set(2.0)
        a.merge(b.snapshot())
        assert a.value == expect, agg
    with pytest.raises(ValueError):
        Gauge("g", aggregation="median")


def test_gauge_merge_unset_is_noop_and_unset_target_adopts():
    a, b = Gauge("g", aggregation="min"), Gauge("g", aggregation="min")
    a.set(3.0)
    a.merge(b.snapshot())  # b never set → no-op
    assert a.value == 3.0
    c = Gauge("g", aggregation="min")
    c.merge(a.snapshot())  # c never set → adopts regardless of aggregation
    assert c.value == 3.0


def test_histogram_buckets_fixed_and_validated():
    h = Histogram("h")
    assert h.buckets == DEFAULT_BUCKETS
    with pytest.raises(ValueError):
        Histogram("h", buckets=[1.0, 1.0])
    with pytest.raises(ValueError):
        Histogram("h", buckets=[1.0, math.inf])
    with pytest.raises(ValueError):
        h.observe(math.nan)


def test_histogram_le_semantics_and_quantile():
    h = Histogram("h", buckets=[1.0, 2.0, 4.0])
    for v in (0.5, 1.0, 1.5, 8.0):
        h.observe(v)
    snap = h.snapshot()
    # le is inclusive: 1.0 lands in the first bucket; 8.0 overflows to +Inf.
    assert snap["counts"] == [2, 1, 0, 1]
    assert h.count == 4
    assert h.sum == pytest.approx(11.0)
    assert h.quantile(0.5) == 1.0
    assert h.quantile(1.0) == math.inf
    assert math.isnan(Histogram("e").quantile(0.5))


def test_histogram_merge_rejects_different_buckets():
    a = Histogram("h", buckets=[1.0, 2.0])
    b = Histogram("h", buckets=[1.0, 3.0])
    with pytest.raises(ValueError):
        a.merge(b.snapshot())


@given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=40))
@settings(max_examples=100, deadline=None)
def test_histogram_merge_associative_commutative_bit_identical(values):
    """Any split of the observation stream merges to the same snapshot."""
    serial = Histogram("h")
    for v in values:
        serial.observe(v)
    for n_parts in (2, 3, 4):
        parts = [Histogram("h") for _ in range(n_parts)]
        for i, v in enumerate(values):
            parts[i % n_parts].observe(v)
        # Fold right-to-left to stress a different association order.
        merged = Histogram("h")
        for part in reversed(parts):
            merged.merge(part.snapshot())
        a, b = merged.snapshot(), serial.snapshot()
        assert a["counts"] == b["counts"]
        assert a["count"] == b["count"]
        assert a["sum"] == b["sum"]  # bit-identical, not approx


# -- registry -----------------------------------------------------------------


def test_registry_get_or_create_and_kind_mismatch():
    reg = MetricsRegistry()
    c1 = reg.counter("hits", help="h")
    c2 = reg.counter("hits")
    assert c1 is c2
    assert reg.counter("hits", op="x") is not c1  # distinct label set
    with pytest.raises(ValueError):
        reg.gauge("hits")
    assert len(reg) == 2


def test_registry_merge_creates_and_accumulates():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("n").inc(1)
    b.counter("n").inc(2)
    b.gauge("depth").set(7)
    b.histogram("lat", op="submit").observe(0.5)
    a.merge(b.snapshot())
    assert a.counter("n").value == 3.0
    assert a.gauge("depth").value == 7.0
    assert a.histogram("lat", op="submit").count == 1
    a.merge(b)  # merging the live registry works too
    assert a.counter("n").value == 5.0
    with pytest.raises(ValueError):
        a.merge({"format": "something-else"})


def test_registry_snapshot_order_independent_of_creation_order():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("x").inc()
    a.counter("a").inc()
    b.counter("a").inc()
    b.counter("x").inc()
    assert [i["name"] for i in a.snapshot()["instruments"]] == ["a", "x"]
    assert a.snapshot() == b.snapshot()


# -- exposition ---------------------------------------------------------------


def _golden_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    c = reg.counter("aart_requests_total", help="Requests served.")
    c.inc(3)
    reg.gauge("aart_queue_depth", help="Pending mutations.").set(2)
    h = reg.histogram(
        "aart_latency_seconds",
        help="Request latency.",
        buckets=[0.001, 0.01, 0.1, 1.0],
        op="submit",
    )
    for v in (0.0005, 0.004, 0.004, 0.05, 3.0):
        h.observe(v)
    return reg


def test_prometheus_exposition_matches_golden():
    text = render_prometheus(_golden_registry().snapshot())
    golden = (GOLDEN / "exposition.prom").read_text()
    assert text == golden


def test_prometheus_escapes_label_values():
    reg = MetricsRegistry()
    reg.counter("c", path='a"b\\c').inc()
    text = render_prometheus(reg.snapshot())
    assert 'path="a\\"b\\\\c"' in text


def test_render_json_strips_partials_and_is_stable():
    snap = _golden_registry().snapshot()
    doc = json.loads(render_json(snap))
    assert doc["format"] == snap["format"]
    assert all("partials" not in inst for inst in doc["instruments"])
    assert strip_partials(snap)["instruments"] == doc["instruments"]
    # stripping does not mutate the original
    assert any("partials" in inst for inst in snap["instruments"])


def test_counters_to_snapshot_and_merge_snapshots():
    counters = {"steps": 4, "arrivals": 9}
    snap = counters_to_snapshot(counters)
    names = [i["name"] for i in snap["instruments"]]
    assert names == ["aart_arrivals_total", "aart_steps_total"]
    reg = MetricsRegistry()
    reg.gauge("aart_depth").set(1)
    combined = merge_snapshots(reg.snapshot(), snap)
    assert [i["name"] for i in combined["instruments"]] == [
        "aart_arrivals_total",
        "aart_depth",
        "aart_steps_total",
    ]
    text = render_prometheus(combined)
    assert "aart_steps_total 4" in text
    with pytest.raises(ValueError):
        merge_snapshots({"format": "nope"})
