"""Tracer: span trees, merging across processes, Chrome export."""

import itertools
import json
from pathlib import Path

import pytest

from repro.observability import TRACE_FORMAT, Tracer, chrome_trace

GOLDEN = Path(__file__).parent / "golden"


def _ticking_clock(step=1.0):
    """A deterministic monotonic clock advancing ``step`` per read."""
    counter = itertools.count()
    return lambda: next(counter) * step


def _sample_tracer() -> Tracer:
    t = Tracer(trace_id="golden-trace", clock=_ticking_clock())
    with t.span("solve.alg2", solver="alg2"):
        with t.span("linearize"):
            pass
        with t.span("alg2"):
            pass
        with t.span("reclaim"):
            pass
    return t


# -- recording ----------------------------------------------------------------


def test_span_tree_structure():
    t = _sample_tracer()
    roots = t.tree()
    assert [r["name"] for r in roots] == ["solve.alg2"]
    assert [c["name"] for c in roots[0]["children"]] == [
        "linearize",
        "alg2",
        "reclaim",
    ]
    assert len(t) == 4
    assert roots[0]["attrs"] == {"solver": "alg2"}
    assert all(c["parent_id"] == roots[0]["span_id"] for c in roots[0]["children"])


def test_open_span_id_tracks_nesting():
    t = Tracer(clock=_ticking_clock())
    assert t.open_span_id is None
    with t.span("outer") as outer_id:
        assert t.open_span_id == outer_id
        with t.span("inner") as inner_id:
            assert t.open_span_id == inner_id
        assert t.open_span_id == outer_id
    assert t.open_span_id is None


def test_snapshot_roundtrips_through_json():
    snap = _sample_tracer().snapshot()
    assert snap["format"] == TRACE_FORMAT
    assert snap == json.loads(json.dumps(snap))


# -- merging ------------------------------------------------------------------


def test_merge_remaps_ids_and_reparents_under_open_span():
    worker = Tracer(clock=_ticking_clock())
    with worker.span("chunk"):
        with worker.span("trial"):
            pass
    caller = Tracer(clock=_ticking_clock())
    with caller.span("sweep"):
        caller.merge(worker.snapshot())
    roots = caller.tree()
    assert [r["name"] for r in roots] == ["sweep"]
    chunk = roots[0]["children"][0]
    assert chunk["name"] == "chunk"
    assert [c["name"] for c in chunk["children"]] == ["trial"]
    # ids were remapped into the caller's id space — all distinct
    ids = [s["span_id"] for s in caller.snapshot()["spans"]]
    assert len(set(ids)) == len(ids)


def test_merge_outside_any_span_keeps_foreign_roots_as_roots():
    worker = Tracer(clock=_ticking_clock())
    with worker.span("chunk"):
        pass
    snap = worker.snapshot()
    caller = Tracer(clock=_ticking_clock())
    caller.merge(snap, at=10.0)
    roots = caller.tree()
    assert [r["name"] for r in roots] == ["chunk"]
    # foreign timeline shifted so its origin lands at offset 10 on ours
    assert roots[0]["start"] == pytest.approx(snap["spans"][0]["start"] + 10.0)


def test_merge_rejects_foreign_formats():
    with pytest.raises(ValueError):
        Tracer(clock=_ticking_clock()).merge({"format": "not-a-trace"})


def test_skeleton_is_split_invariant():
    """The structural digest ignores how spans were spread across workers."""

    def record(tracer):
        with tracer.span("solve.alg2"):
            with tracer.span("linearize"):
                pass

    serial = Tracer(clock=_ticking_clock())
    for _ in range(6):
        record(serial)

    merged = Tracer(clock=_ticking_clock())
    workers = [Tracer(clock=_ticking_clock()) for _ in range(3)]
    for k in range(6):
        record(workers[k % 3])
    for w in workers:
        merged.merge(w.snapshot())

    skel = merged.skeleton()
    assert skel == serial.skeleton()
    assert skel["solve.alg2"]["count"] == 6
    assert skel["solve.alg2"]["children"]["linearize"]["count"] == 6


# -- Chrome export ------------------------------------------------------------


def test_chrome_trace_matches_golden():
    doc = chrome_trace(_sample_tracer().snapshot())
    golden = json.loads((GOLDEN / "trace.chrome.json").read_text())
    assert doc == golden


def test_chrome_trace_shape():
    doc = chrome_trace(_sample_tracer().snapshot(), _sample_tracer().snapshot())
    events = doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ms"
    assert {e["ph"] for e in events} == {"M", "X"}
    assert {e["pid"] for e in events} == {0, 1}  # one pid per snapshot
    xs = [e for e in events if e["ph"] == "X"]
    for e in xs:
        assert set(e) == {"ph", "pid", "tid", "name", "ts", "dur", "args"}
        assert e["ts"] >= 0 and e["dur"] >= 0
    with pytest.raises(ValueError):
        chrome_trace({"format": "nope"})
