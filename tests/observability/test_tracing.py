"""Tracer: span trees, merging across processes, Chrome export."""

import itertools
import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability import TRACE_FORMAT, Tracer, chrome_trace, stamp_remote

GOLDEN = Path(__file__).parent / "golden"


def _ticking_clock(step=1.0):
    """A deterministic monotonic clock advancing ``step`` per read."""
    counter = itertools.count()
    return lambda: next(counter) * step


def _sample_tracer() -> Tracer:
    t = Tracer(trace_id="golden-trace", clock=_ticking_clock())
    with t.span("solve.alg2", solver="alg2"):
        with t.span("linearize"):
            pass
        with t.span("alg2"):
            pass
        with t.span("reclaim"):
            pass
    return t


# -- recording ----------------------------------------------------------------


def test_span_tree_structure():
    t = _sample_tracer()
    roots = t.tree()
    assert [r["name"] for r in roots] == ["solve.alg2"]
    assert [c["name"] for c in roots[0]["children"]] == [
        "linearize",
        "alg2",
        "reclaim",
    ]
    assert len(t) == 4
    assert roots[0]["attrs"] == {"solver": "alg2"}
    assert all(c["parent_id"] == roots[0]["span_id"] for c in roots[0]["children"])


def test_open_span_id_tracks_nesting():
    t = Tracer(clock=_ticking_clock())
    assert t.open_span_id is None
    with t.span("outer") as outer_id:
        assert t.open_span_id == outer_id
        with t.span("inner") as inner_id:
            assert t.open_span_id == inner_id
        assert t.open_span_id == outer_id
    assert t.open_span_id is None


def test_snapshot_roundtrips_through_json():
    snap = _sample_tracer().snapshot()
    assert snap["format"] == TRACE_FORMAT
    assert snap == json.loads(json.dumps(snap))


# -- merging ------------------------------------------------------------------


def test_merge_remaps_ids_and_reparents_under_open_span():
    worker = Tracer(clock=_ticking_clock())
    with worker.span("chunk"):
        with worker.span("trial"):
            pass
    caller = Tracer(clock=_ticking_clock())
    with caller.span("sweep"):
        caller.merge(worker.snapshot())
    roots = caller.tree()
    assert [r["name"] for r in roots] == ["sweep"]
    chunk = roots[0]["children"][0]
    assert chunk["name"] == "chunk"
    assert [c["name"] for c in chunk["children"]] == ["trial"]
    # ids were remapped into the caller's id space — all distinct
    ids = [s["span_id"] for s in caller.snapshot()["spans"]]
    assert len(set(ids)) == len(ids)


def test_merge_outside_any_span_keeps_foreign_roots_as_roots():
    worker = Tracer(clock=_ticking_clock())
    with worker.span("chunk"):
        pass
    snap = worker.snapshot()
    caller = Tracer(clock=_ticking_clock())
    caller.merge(snap, at=10.0)
    roots = caller.tree()
    assert [r["name"] for r in roots] == ["chunk"]
    # foreign timeline shifted so its origin lands at offset 10 on ours
    assert roots[0]["start"] == pytest.approx(snap["spans"][0]["start"] + 10.0)


def test_merge_rejects_foreign_formats():
    with pytest.raises(ValueError):
        Tracer(clock=_ticking_clock()).merge({"format": "not-a-trace"})


def test_record_appends_a_closed_span_under_the_open_one():
    t = Tracer(clock=_ticking_clock())
    with t.span("step") as step_id:
        sid = t.record("phase.queue_wait", start=t.now - 0.5, duration=0.5, op="submit")
    spans = {s["span_id"]: s for s in t.snapshot()["spans"]}
    assert spans[sid]["parent_id"] == step_id
    assert spans[sid]["duration"] == 0.5
    assert spans[sid]["attrs"] == {"op": "submit"}
    # recorded outside any open span → a root
    root_sid = t.record("orphan", start=0.0, duration=1.0)
    spans = {s["span_id"]: s for s in t.snapshot()["spans"]}
    assert spans[root_sid]["parent_id"] is None


# -- remote-parent grafting ---------------------------------------------------


def test_stamp_remote_annotates_roots_and_rewrites_trace_id():
    worker = Tracer(trace_id="worker", clock=_ticking_clock())
    with worker.span("chunk"):
        with worker.span("trial"):
            pass
    snap = worker.snapshot()
    stamped = stamp_remote(snap, "caller-trace", 7)
    assert stamped["trace_id"] == "caller-trace"
    roots = [s for s in stamped["spans"] if s["parent_id"] is None]
    children = [s for s in stamped["spans"] if s["parent_id"] is not None]
    assert all(s["remote_parent"] == 7 for s in roots)
    assert all("remote_parent" not in s for s in children)
    # the original snapshot is untouched
    assert all("remote_parent" not in s for s in snap["spans"])


def test_merge_grafts_remote_roots_under_the_stamped_local_span():
    server = Tracer(clock=_ticking_clock())
    with server.span("service.step"):
        pass
    client = Tracer(trace_id="req", clock=_ticking_clock())
    with client.span("client.request") as span_id:
        ferried = stamp_remote(server.snapshot(), client.trace_id, span_id)
        client.merge(ferried)
    roots = client.tree()
    assert [r["name"] for r in roots] == ["client.request"]
    assert [c["name"] for c in roots[0]["children"]] == ["service.step"]


def test_merge_ignores_remote_parents_outside_the_local_id_space():
    # A stamp referencing a span id the local tracer never issued must not
    # invent a parent: the foreign root falls back to the merge default.
    server = Tracer(clock=_ticking_clock())
    with server.span("service.step"):
        pass
    client = Tracer(clock=_ticking_clock())
    client.merge(stamp_remote(server.snapshot(), "req", 999))
    assert [r["name"] for r in client.tree()] == ["service.step"]


@settings(deadline=None, max_examples=50)
@given(
    names=st.lists(
        st.sampled_from(["solve.alg2", "linearize", "waterfill"]),
        min_size=1,
        max_size=10,
    ),
    n_workers=st.integers(min_value=1, max_value=4),
)
def test_grafting_preserves_skeleton_split_invariance(names, n_workers):
    """Ferrying spans through stamp_remote must not change the skeleton."""
    serial = Tracer(clock=_ticking_clock())
    with serial.span("client.request"):
        for name in names:
            with serial.span(name):
                pass

    stitched = Tracer(clock=_ticking_clock())
    workers = [Tracer(clock=_ticking_clock()) for _ in range(n_workers)]
    for k, name in enumerate(names):
        with workers[k % n_workers].span(name):
            pass
    with stitched.span("client.request") as span_id:
        pass
    for worker in workers:
        stitched.merge(stamp_remote(worker.snapshot(), stitched.trace_id, span_id))

    assert stitched.skeleton() == serial.skeleton()


def test_skeleton_is_split_invariant():
    """The structural digest ignores how spans were spread across workers."""

    def record(tracer):
        with tracer.span("solve.alg2"):
            with tracer.span("linearize"):
                pass

    serial = Tracer(clock=_ticking_clock())
    for _ in range(6):
        record(serial)

    merged = Tracer(clock=_ticking_clock())
    workers = [Tracer(clock=_ticking_clock()) for _ in range(3)]
    for k in range(6):
        record(workers[k % 3])
    for w in workers:
        merged.merge(w.snapshot())

    skel = merged.skeleton()
    assert skel == serial.skeleton()
    assert skel["solve.alg2"]["count"] == 6
    assert skel["solve.alg2"]["children"]["linearize"]["count"] == 6


# -- Chrome export ------------------------------------------------------------


def test_chrome_trace_matches_golden():
    doc = chrome_trace(_sample_tracer().snapshot())
    golden = json.loads((GOLDEN / "trace.chrome.json").read_text())
    assert doc == golden


def test_chrome_trace_shape():
    doc = chrome_trace(_sample_tracer().snapshot(), _sample_tracer().snapshot())
    events = doc["traceEvents"]
    assert doc["displayTimeUnit"] == "ms"
    assert {e["ph"] for e in events} == {"M", "X"}
    assert {e["pid"] for e in events} == {0, 1}  # one pid per snapshot
    xs = [e for e in events if e["ph"] == "X"]
    for e in xs:
        assert set(e) == {"ph", "pid", "tid", "name", "ts", "dur", "args"}
        assert e["ts"] >= 0 and e["dur"] >= 0
    with pytest.raises(ValueError):
        chrome_trace({"format": "nope"})
