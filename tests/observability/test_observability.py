"""Counters, spans and sinks — the observability building blocks."""

import json
import time

import pytest

from repro.observability import (
    Counters,
    EventSink,
    JsonlSink,
    MemorySink,
    NullSink,
    SpanRecorder,
)


# -- counters -----------------------------------------------------------------


def test_counters_mapping_semantics():
    c = Counters()
    assert c["anything"] == 0
    c.add("a")
    c.add("a", 2)
    c.add("b", 5)
    assert c["a"] == 3 and c["b"] == 5
    assert set(c) == {"a", "b"}
    assert len(c) == 2
    assert c.snapshot() == {"a": 3, "b": 5}
    # snapshot is a copy, not a view
    snap = c.snapshot()
    c.add("a")
    assert snap["a"] == 3


def test_counters_reject_negative_increment():
    with pytest.raises(ValueError):
        Counters().add("x", -2)


def test_counters_merge():
    a, b = Counters(), Counters()
    a.add("x", 1)
    b.add("x", 2)
    b.add("y", 3)
    a.merge(b)
    assert a.snapshot() == {"x": 3, "y": 3}


# -- spans --------------------------------------------------------------------


def test_span_recorder_accumulates_per_name():
    rec = SpanRecorder()
    with rec.span("work"):
        time.sleep(0.002)
    with rec.span("work"):
        time.sleep(0.002)
    with rec.span("other"):
        pass
    assert rec.count("work") == 2
    assert rec.count("other") == 1
    assert rec.total("work") >= 0.003
    snap = rec.snapshot()
    assert set(snap) == {"work", "other"}
    assert snap["work"]["count"] == 2
    assert snap["work"]["total"] == pytest.approx(rec.total("work"))


def test_span_recorder_unknown_name_is_zero():
    rec = SpanRecorder()
    assert rec.total("never") == 0.0
    assert rec.count("never") == 0


# -- sinks --------------------------------------------------------------------


def test_null_and_memory_sinks_satisfy_protocol():
    assert isinstance(NullSink(), EventSink)
    assert isinstance(MemorySink(), EventSink)
    NullSink().emit({"type": "x"})  # no-op, no error


def test_memory_sink_filters_by_type():
    sink = MemorySink()
    sink.emit({"type": "span", "name": "a"})
    sink.emit({"type": "counters", "counters": {}})
    sink.emit({"type": "span", "name": "b"})
    assert [e["name"] for e in sink.of_type("span")] == ["a", "b"]
    assert len(sink.of_type("counters")) == 1


def test_jsonl_sink_writes_one_json_object_per_line(tmp_path):
    path = tmp_path / "trace.jsonl"
    with JsonlSink(path) as sink:
        sink.emit({"type": "span", "name": "linearize", "seconds": 0.5})
        sink.emit({"type": "counters", "counters": {"alg2_heap_ops": 6}})
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    events = [json.loads(line) for line in lines]
    assert events[0]["name"] == "linearize"
    assert events[1]["counters"]["alg2_heap_ops"] == 6


def test_jsonl_sink_appends_and_accepts_file_objects(tmp_path):
    path = tmp_path / "trace.jsonl"
    with JsonlSink(path) as sink:
        sink.emit({"k": 1})
    with JsonlSink(path) as sink:
        sink.emit({"k": 2})
    assert len(path.read_text().splitlines()) == 2

    import io

    buf = io.StringIO()
    JsonlSink(buf).emit({"k": 3})
    assert json.loads(buf.getvalue()) == {"k": 3}


def test_span_recorder_merge_recorder_and_snapshot():
    a, b = SpanRecorder(), SpanRecorder()
    with a.span("work"):
        time.sleep(0.001)
    with b.span("work"):
        time.sleep(0.001)
    with b.span("other"):
        pass
    total_before = a.total("work")
    a.merge(b)  # merge a live recorder
    assert a.count("work") == 2
    assert a.total("work") == pytest.approx(total_before + b.total("work"))
    assert a.count("other") == 1
    c = SpanRecorder()
    c.merge(a.snapshot())  # merging a snapshot dict is lossless
    assert c.snapshot() == a.snapshot()


def test_span_recorder_merge_accumulates_into_existing_timer():
    rec = SpanRecorder()
    with rec.span("work"):
        pass
    rec.merge({"work": {"total": 1.5, "count": 3.0}})
    assert rec.count("work") == 4
    assert rec.total("work") >= 1.5


def test_jsonl_sink_concurrent_emits_produce_whole_lines(tmp_path):
    """N threads × M events each → N*M complete, parseable lines."""
    import threading

    path = tmp_path / "concurrent.jsonl"
    sink = JsonlSink(path)
    n_threads, n_events = 8, 50

    def pump(tid):
        for k in range(n_events):
            sink.emit({"type": "span", "tid": tid, "k": k, "pad": "x" * 200})

    threads = [threading.Thread(target=pump, args=(t,)) for t in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    sink.close()
    lines = path.read_text().splitlines()
    assert len(lines) == n_threads * n_events
    events = [json.loads(line) for line in lines]  # every line parses whole
    seen = {(e["tid"], e["k"]) for e in events}
    assert len(seen) == n_threads * n_events


def test_jsonl_sink_reopens_after_close(tmp_path):
    """A path-backed sink accepts emits after close() by reopening in append."""
    path = tmp_path / "reopen.jsonl"
    sink = JsonlSink(path)
    sink.emit({"k": 1})
    sink.close()
    sink.emit({"k": 2})  # must not raise; reopens and appends
    sink.close()
    assert [json.loads(x)["k"] for x in path.read_text().splitlines()] == [1, 2]


def test_memory_sink_bounded_keeps_newest_and_counts_drops():
    sink = MemorySink(maxlen=3)
    for k in range(5):
        sink.emit({"type": "e", "k": k})
    assert [e["k"] for e in sink.events] == [2, 3, 4]
    assert sink.dropped == 2


def test_memory_sink_unbounded_never_drops():
    sink = MemorySink()
    for k in range(100):
        sink.emit({"k": k})
    assert len(sink.events) == 100 and sink.dropped == 0


def test_memory_sink_rejects_silly_maxlen():
    with pytest.raises(ValueError):
        MemorySink(maxlen=0)


def test_timer_add_rejects_negative():
    from repro.utils.timing import Timer

    t = Timer()
    with pytest.raises(ValueError):
        t.add(-0.1)
    t.add(0.25, count=2)
    assert t.total == pytest.approx(0.25)
    assert t.count == 2
