"""FlightRecorder: ring discipline, event filtering, atomic dumps."""

import itertools
import json
import os
import signal
import threading

import pytest

from repro.observability import (
    FLIGHT_FORMAT,
    NOTABLE_EVENTS,
    FlightRecorder,
    load_flight,
)


def _ticking_clock(step=1.0):
    counter = itertools.count()
    return lambda: next(counter) * step


# -- ring discipline ----------------------------------------------------------


def test_record_stamps_seq_and_monotonic_offset():
    rec = FlightRecorder(capacity=8, clock=_ticking_clock())
    rec.record("step", step=1)
    rec.record("replan", moved=3)
    events = rec.snapshot()["events"]
    assert [e["kind"] for e in events] == ["step", "replan"]
    assert [e["seq"] for e in events] == [1, 2]
    assert events[0]["t"] < events[1]["t"]
    assert events[0]["step"] == 1 and events[1]["moved"] == 3


def test_ring_is_bounded_and_counts_drops():
    rec = FlightRecorder(capacity=4)
    for k in range(10):
        rec.record("step", step=k)
    assert len(rec) == 4
    assert rec.dropped == 6
    snap = rec.snapshot()
    assert snap["dropped"] == 6 and snap["capacity"] == 4
    # the ring keeps the most recent entries, oldest first
    assert [e["step"] for e in snap["events"]] == [6, 7, 8, 9]
    assert [e["seq"] for e in snap["events"]] == [7, 8, 9, 10]


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_snapshot_is_json_ready():
    rec = FlightRecorder(capacity=4)
    rec.record("gap_alert", ratio=0.7)
    snap = rec.snapshot()
    assert snap["format"] == FLIGHT_FORMAT
    assert snap == json.loads(json.dumps(snap))


def test_concurrent_records_never_lose_or_duplicate_seq():
    rec = FlightRecorder(capacity=64)
    n_threads, per_thread = 8, 200

    def hammer(k):
        for i in range(per_thread):
            rec.record("step", worker=k, i=i)

    threads = [threading.Thread(target=hammer, args=(k,)) for k in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    snap = rec.snapshot()
    total = n_threads * per_thread
    assert len(snap["events"]) == 64
    assert snap["dropped"] == total - 64
    seqs = [e["seq"] for e in snap["events"]]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    assert seqs[-1] == total


# -- EventSink tee filtering --------------------------------------------------


def test_emit_keeps_notable_kinds_and_drops_noise():
    rec = FlightRecorder(capacity=16)
    for kind in sorted(NOTABLE_EVENTS):
        rec.emit({"type": kind, "detail": 1})
    rec.emit({"type": "span", "name": "linearize"})  # firehose noise
    rec.emit({"type": "counter", "value": 3})
    kinds = [e["kind"] for e in rec.snapshot()["events"]]
    assert kinds == sorted(NOTABLE_EVENTS)


def test_emit_keeps_only_failed_or_slow_requests():
    rec = FlightRecorder(capacity=16, slow_request_s=0.5)
    rec.emit({"type": "request", "ok": True, "latency_s": 0.001, "op": "submit"})
    rec.emit({"type": "request", "ok": False, "latency_s": 0.001, "op": "submit",
              "request_id": "c1-7"})
    rec.emit({"type": "request", "ok": True, "latency_s": 0.75, "op": "rebalance"})
    events = rec.snapshot()["events"]
    assert [e["ok"] for e in events] == [False, True]
    assert events[0]["request_id"] == "c1-7"
    assert events[1]["latency_s"] == 0.75


# -- dumps --------------------------------------------------------------------


def test_dump_roundtrips_through_load_flight(tmp_path):
    rec = FlightRecorder(capacity=8, clock=_ticking_clock())
    rec.record("step", step=1)
    path = tmp_path / "flight.json"
    rec.dump(str(path))
    doc = load_flight(str(path))
    assert doc == rec.snapshot()
    # no temp file left behind
    assert sorted(p.name for p in tmp_path.iterdir()) == ["flight.json"]


def test_dump_replaces_atomically(tmp_path):
    rec = FlightRecorder(capacity=8)
    path = tmp_path / "flight.json"
    rec.record("step", step=1)
    rec.dump(str(path))
    rec.record("step", step=2)
    rec.dump(str(path))
    assert len(load_flight(str(path))["events"]) == 2


def test_load_flight_rejects_foreign_documents(tmp_path):
    bad = tmp_path / "not-flight.json"
    bad.write_text(json.dumps({"format": "aart-trace/1", "spans": []}))
    with pytest.raises(ValueError):
        load_flight(str(bad))
    bad.write_text(json.dumps({"format": FLIGHT_FORMAT, "events": "nope"}))
    with pytest.raises(ValueError):
        load_flight(str(bad))


def test_sigusr1_handler_dumps_the_ring(tmp_path):
    # Mirrors the `aart serve --flight-dump` wiring: a signal handler that
    # dumps the ring, exercised by signalling our own process.
    rec = FlightRecorder(capacity=8)
    rec.record("gap_alert", ratio=0.5, shard="1")
    path = tmp_path / "flight.json"
    previous = signal.signal(signal.SIGUSR1, lambda signum, frame: rec.dump(str(path)))
    try:
        os.kill(os.getpid(), signal.SIGUSR1)
    finally:
        signal.signal(signal.SIGUSR1, previous)
    doc = load_flight(str(path))
    assert doc["events"][0]["kind"] == "gap_alert"
    assert doc["events"][0]["shard"] == "1"
