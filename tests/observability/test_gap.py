"""GapMonitor: the α guarantee as a runtime alarm."""

import math

import pytest

from repro.core.problem import ALPHA
from repro.observability import GapMonitor, MemorySink


def test_default_threshold_is_the_papers_alpha():
    assert GapMonitor().threshold == pytest.approx(ALPHA)


def test_healthy_steps_do_not_alert():
    sink = MemorySink()
    mon = GapMonitor(sink=sink)
    for ratio in (1.0, 0.95, ALPHA):
        assert mon.observe(ratio, 1.0) is None
    assert sink.of_type("gap_alert") == []
    stats = mon.stats()
    assert stats["ok"] and stats["breaches"] == 0 and stats["steps"] == 3
    assert stats["min_ratio"] == pytest.approx(ALPHA)


def test_breach_emits_structured_alert_with_context():
    sink = MemorySink()
    mon = GapMonitor(sink=sink)
    alert = mon.observe(0.5, 1.0, version=42)
    assert alert is not None
    assert alert["type"] == "gap_alert"
    assert alert["ratio"] == pytest.approx(0.5)
    assert alert["threshold"] == pytest.approx(ALPHA)
    assert alert["version"] == 42
    assert sink.of_type("gap_alert") == [alert]
    stats = mon.stats()
    assert not stats["ok"] and stats["breaches"] == 1


def test_tolerance_absorbs_roundoff_at_the_boundary():
    mon = GapMonitor(threshold=0.8, tolerance=1e-9)
    assert mon.observe(0.8 * (1 - 1e-12), 1.0) is None
    assert mon.observe(0.8 - 1e-6, 1.0) is not None


def test_empty_cluster_certifies_trivially():
    mon = GapMonitor()
    assert mon.observe(0.0, 0.0) is None
    assert mon.last_ratio == 1.0


def test_rolling_quantiles_and_window():
    mon = GapMonitor(threshold=0.0, window=4)
    for ratio in (0.1, 0.2, 0.3, 0.4, 0.5):  # 0.1 evicted by the window
        mon.observe(ratio, 1.0)
    assert mon.quantile(0.0) == pytest.approx(0.2)
    assert mon.quantile(0.5) == pytest.approx(0.3)
    assert mon.quantile(1.0) == pytest.approx(0.5)
    assert mon.stats()["window"] == 4
    assert mon.min_ratio == pytest.approx(0.1)  # lifetime min survives eviction
    with pytest.raises(ValueError):
        mon.quantile(1.5)


def test_empty_monitor_stats():
    stats = GapMonitor().stats()
    assert stats["steps"] == 0 and stats["ok"]
    assert stats["min_ratio"] is None and stats["p50"] is None
    assert math.isnan(GapMonitor().quantile(0.5))


def test_window_validation():
    with pytest.raises(ValueError):
        GapMonitor(window=0)
