"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core.problem import AAProblem
from repro.utility.functions import (
    CappedLinearUtility,
    LinearUtility,
    LogUtility,
    PiecewiseLinearUtility,
    PowerUtility,
    SaturatingUtility,
    ZeroUtility,
)
from repro.utility.quadspline import ConcaveQuadSpline

#: A capacity used by most strategy-generated instances.
CAP = 10.0

# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------

_pos = st.floats(min_value=0.05, max_value=20.0, allow_nan=False, allow_infinity=False)
_frac = st.floats(min_value=0.05, max_value=0.95, allow_nan=False, allow_infinity=False)


def concave_utilities(cap: float = CAP):
    """Strategy producing one concave nondecreasing utility on [0, cap]."""
    return st.one_of(
        st.builds(lambda s: LinearUtility(s, cap), _pos),
        st.builds(lambda s, b: CappedLinearUtility(s, b * cap, cap), _pos, _frac),
        st.builds(
            lambda c, b: PowerUtility(c, b, cap),
            _pos,
            st.floats(min_value=0.2, max_value=1.0),
        ),
        st.builds(lambda c, s: LogUtility(c, s, cap), _pos, _pos),
        st.builds(lambda v, k: SaturatingUtility(v, k, cap), _pos, _pos),
        st.builds(
            lambda v, f: ConcaveQuadSpline(v, v * f, cap),
            _pos,
            _frac,
        ),
        st.just(ZeroUtility(cap)),
    )


def utility_lists(min_size: int = 1, max_size: int = 8, cap: float = CAP):
    """Strategy producing a list of concave utilities."""
    return st.lists(concave_utilities(cap), min_size=min_size, max_size=max_size)


def aa_problems(max_threads: int = 8, max_servers: int = 4, cap: float = CAP):
    """Strategy producing a full AA instance."""
    return st.builds(
        lambda fns, m: AAProblem(fns, n_servers=m, capacity=cap),
        utility_lists(1, max_threads, cap),
        st.integers(min_value=1, max_value=max_servers),
    )


# ---------------------------------------------------------------------------
# plain fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def mixed_utilities():
    """A fixed, diverse bundle of utilities on [0, 10]."""
    return [
        LinearUtility(0.5, CAP),
        CappedLinearUtility(2.0, 3.0, CAP),
        PowerUtility(1.5, 0.5, CAP),
        LogUtility(2.0, 1.0, CAP),
        SaturatingUtility(3.0, 2.0, CAP),
        ConcaveQuadSpline(2.0, 1.0, CAP),
        PiecewiseLinearUtility([0.0, 2.0, 6.0, 10.0], [0.0, 3.0, 5.0, 5.5]),
        ZeroUtility(CAP),
    ]


@pytest.fixture
def small_problem(mixed_utilities):
    return AAProblem(mixed_utilities, n_servers=3, capacity=CAP)


def assert_allocation_optimal(batch, allocations, budget, tol=1e-6):
    """Assert KKT optimality of a single-pool allocation (shared helper)."""
    from repro.allocation.waterfill import kkt_violation

    gain = kkt_violation(batch, allocations, budget)
    derivs = np.asarray(batch.derivative(np.asarray(allocations, dtype=float)))
    finite = derivs[np.isfinite(derivs)]
    scale = max(float(finite.max()) if finite.size else 1.0, 1.0)
    assert np.isfinite(gain) and gain <= tol * scale, (
        f"KKT violation {gain} exceeds tolerance {tol * scale}"
    )
