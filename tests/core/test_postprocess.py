"""Reclamation pass: per-server optimality and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.allocation.waterfill import water_fill
from repro.core.algorithm2 import algorithm2
from repro.core.postprocess import reclaim, waterfill_within_servers
from repro.core.problem import AAProblem, Assignment
from repro.utility.functions import CappedLinearUtility, LogUtility

from tests.conftest import CAP, aa_problems


def _problem(n=6, m=2):
    return AAProblem([LogUtility(1.0 + i, 1.0, CAP) for i in range(n)], m, CAP)


def test_reclaims_stranded_capacity():
    """A full-thread server with leftovers must hand them to its threads."""
    p = AAProblem(
        [CappedLinearUtility(1.0, 6.0, CAP), LogUtility(3.0, 1.0, CAP)],
        2,
        CAP,
    )
    # Put each thread alone on a server but under-allocate thread 1.
    before = Assignment(servers=[0, 1], allocations=[6.0, 4.0])
    after = waterfill_within_servers(p, before.servers)
    assert after.allocations[1] == pytest.approx(CAP)
    assert after.total_utility(p) > before.total_utility(p)


def test_assignment_unchanged():
    p = _problem(7, 3)
    a = algorithm2(p)
    b = reclaim(p, a)
    assert np.array_equal(a.servers, b.servers)


@settings(max_examples=30, deadline=None)
@given(aa_problems(max_threads=8, max_servers=3))
def test_per_server_allocations_are_optimal(problem):
    a = reclaim(problem, algorithm2(problem))
    a.validate(problem)
    for j in range(problem.n_servers):
        members = a.threads_on(j)
        if members.size == 0:
            continue
        sub = problem.utilities.subset(members)
        best = water_fill(sub, problem.capacity).total_utility
        got = float(np.sum(np.asarray(sub.value(a.allocations[members]))))
        assert got == pytest.approx(best, rel=1e-6, abs=1e-6)


def test_rejects_wrong_length():
    p = _problem(3, 2)
    with pytest.raises(ValueError):
        waterfill_within_servers(p, np.array([0, 1]))


def test_rejects_out_of_range_server():
    p = _problem(2, 2)
    with pytest.raises(ValueError):
        waterfill_within_servers(p, np.array([0, 5]))


def test_empty_problem():
    p = AAProblem([], 2, CAP)
    a = waterfill_within_servers(p, np.zeros(0, dtype=int))
    assert a.n_threads == 0
