"""Super-optimal allocation and linearization: Lemmas V.2-V.4 as tests."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.exact import exact_continuous
from repro.core.linearize import linearize
from repro.core.problem import AAProblem
from repro.utility.functions import CappedLinearUtility, LinearUtility, LogUtility

from tests.conftest import CAP, aa_problems


def _problem(n=5, m=2):
    return AAProblem([LogUtility(1.0 + i, 1.0, CAP) for i in range(n)], m, CAP)


def test_pool_saturated_lemma_v3():
    """Σ ĉ_i = mC when threads can absorb the pool (Lemma V.3)."""
    p = _problem(5, 2)
    lin = linearize(p)
    assert float(np.sum(lin.c_hat)) == pytest.approx(p.pool, rel=1e-9)


def test_pool_partially_used_when_n_below_m():
    """n < m: every thread is capped at C, pool cannot be saturated."""
    p = _problem(2, 4)
    lin = linearize(p)
    assert np.all(lin.c_hat == pytest.approx(CAP))
    assert float(np.sum(lin.c_hat)) == pytest.approx(2 * CAP)


def test_chat_never_exceeds_capacity():
    p = _problem(8, 3)
    lin = linearize(p)
    assert np.all(lin.c_hat <= CAP + 1e-9)


def test_top_is_value_at_chat():
    p = _problem(4, 2)
    lin = linearize(p)
    assert lin.top == pytest.approx(np.asarray(p.utilities.value(lin.c_hat)))


def test_super_optimal_utility_is_sum_of_tops():
    p = _problem(4, 2)
    lin = linearize(p)
    assert lin.super_optimal_utility == pytest.approx(float(np.sum(lin.top)))


@settings(max_examples=40, deadline=None)
@given(aa_problems(max_threads=7, max_servers=3))
def test_bound_dominates_exact_optimum_lemma_v2(problem):
    """F* <= F̂ (Lemma V.2) on random instances, via the exact solver."""
    lin = linearize(problem)
    opt = exact_continuous(problem).total_utility(problem)
    assert opt <= lin.super_optimal_utility + 1e-6 * (1 + abs(opt))


@settings(max_examples=40, deadline=None)
@given(aa_problems(max_threads=8, max_servers=4))
def test_g_minorizes_f_lemma_v4(problem):
    """g_i(x) <= f_i(x) for all x (Lemma V.4) and touches at ĉ_i."""
    lin = linearize(problem)
    n = problem.n_threads
    idx = np.arange(n)
    for frac in (0.0, 0.1, 0.5, 0.9, 1.0):
        x = np.full(n, frac * CAP)
        g = lin.g_value(idx, x)
        f = np.asarray(problem.utilities.value(x))
        assert np.all(g <= f + 1e-7 * (1 + np.abs(f)))
    at_chat = lin.g_value(idx, lin.c_hat)
    assert at_chat == pytest.approx(lin.top, rel=1e-9, abs=1e-9)


def test_g_value_ramp_and_flat():
    # Two breakpoint-5 threads exactly absorb the pool: ĉ_i = 5 each.
    fns = [CappedLinearUtility(2.0, 5.0, CAP), CappedLinearUtility(2.0, 5.0, CAP)]
    p = AAProblem(fns, 1, CAP)
    lin = linearize(p)
    c_hat = float(lin.c_hat[0])
    assert c_hat == pytest.approx(5.0)
    assert lin.g_value(0, 0.0) == pytest.approx(0.0)
    assert lin.g_value(0, c_hat / 2) == pytest.approx(lin.top[0] / 2)
    assert lin.g_value(0, CAP) == pytest.approx(lin.top[0])


def test_g_value_zero_chat_thread_is_flat():
    """A thread with ĉ = 0 contributes its (constant) f(0) to g."""
    # Slope-0 thread loses the whole pool to the strong thread.
    p = AAProblem(
        [LinearUtility(0.0, CAP), LinearUtility(5.0, CAP)], 1, CAP
    )
    lin = linearize(p)
    assert lin.c_hat[0] == pytest.approx(0.0)
    assert lin.g_value(0, 3.0) == pytest.approx(lin.top[0])


def test_g_total_sums():
    p = _problem(3, 2)
    lin = linearize(p)
    x = np.array([1.0, 2.0, 3.0])
    expected = sum(float(lin.g_value(i, x[i])) for i in range(3))
    assert lin.g_total(x) == pytest.approx(expected)


def test_slope_definition():
    p = _problem(3, 1)
    lin = linearize(p)
    pos = lin.c_hat > 0
    assert lin.slope[pos] == pytest.approx(lin.top[pos] / lin.c_hat[pos])
