"""The oracle-equivalence contract of the array-first pipeline.

The scalar pipeline (``linearize`` → ``algorithm2`` → ``reclaim`` plus the
four heuristics) is the semantic ground truth; every batched kernel must be
**bit-identical** to its scalar counterpart run per trial — same floats,
same assignments, same tie-breaks, ``rtol=0``.  These tests enforce that
contract at both levels:

* kernel level — :func:`linearize_batch`, :func:`algorithm2_batch_kernel`,
  :func:`reclaim_batch` and :func:`water_fill_batch` against per-trial
  scalar runs, across all four Section VII workload generators
  (hypothesis-driven);
* harness level — ``backend="batch"`` vs ``backend="scalar"`` utility
  matrices, counters and the α-certificate, serial and pooled.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.allocation.waterfill import water_fill, water_fill_batch
from repro.core.algorithm2 import algorithm2
from repro.core.algorithm2_batch import algorithm2_batch_kernel, thread_order_batch
from repro.core.batch import BatchProblem, linearize_batch, reclaim_batch
from repro.core.linearize import linearize
from repro.core.postprocess import reclaim
from repro.core.problem import ALPHA
from repro.engine import LinearizationCache, SolveContext, get_solver
from repro.experiments.harness import run_point_arrays
from repro.utility.batch import GenericBatch, QuadSplineBatch, concat_batches
from repro.workloads.generators import make_distribution, make_problem

GENERATORS = ("uniform", "normal", "powerlaw", "discrete")

#: Counters the batch path adds on top of per-trial-equivalent accounting.
ROUTING_COUNTERS = ("batch_trials", "batch_fallbacks")


def _point_params(dist_name):
    return dict(dist=make_distribution(dist_name), n_servers=5, beta=2.6,
                capacity=1000.0, trials=8, seed=20260808)


def _without_routing(counters):
    return {k: v for k, v in counters.items() if k not in ROUTING_COUNTERS}


# ---------------------------------------------------------------------------
# Kernel level: hypothesis-driven bit-identity per trial.
# ---------------------------------------------------------------------------

instance_params = st.tuples(
    st.sampled_from(GENERATORS),
    st.integers(min_value=2, max_value=6),      # servers
    st.integers(min_value=2, max_value=14),     # threads per trial
    st.integers(min_value=2, max_value=5),      # trials
    st.integers(min_value=0, max_value=2**32 - 1),
)


def _build_batch(dist_name, m, n, trials, seed):
    dist = make_distribution(dist_name)
    root = np.random.SeedSequence(seed)
    problems = [
        make_problem(dist, m, n / m, seed=np.random.default_rng(child))
        for child in root.spawn(trials)
    ]
    return problems, BatchProblem.from_problems(problems)


@settings(max_examples=20, deadline=None)
@given(instance_params)
def test_linearize_batch_bit_identical(params):
    problems, bp = _build_batch(*params)
    blin = linearize_batch(bp)
    for t, problem in enumerate(problems):
        lin = linearize(problem)
        assert np.array_equal(blin.c_hat[t], lin.c_hat)
        assert np.array_equal(blin.top[t], lin.top)
        assert np.array_equal(blin.slope[t], lin.slope)
        assert float(blin.super_optimal_utility[t]) == lin.super_optimal_utility


@settings(max_examples=20, deadline=None)
@given(instance_params)
def test_algorithm2_and_reclaim_batch_bit_identical(params):
    problems, bp = _build_batch(*params)
    blin = linearize_batch(bp)
    raw = algorithm2_batch_kernel(bp, blin)
    reclaimed = reclaim_batch(bp, raw)
    for t, problem in enumerate(problems):
        scalar_raw = algorithm2(problem)
        assert np.array_equal(raw.servers[t], scalar_raw.servers)
        assert np.array_equal(raw.allocations[t], scalar_raw.allocations)
        scalar_rec = reclaim(problem, scalar_raw)
        assert np.array_equal(reclaimed.allocations[t], scalar_rec.allocations)
        # The paper's guarantee survives the batch path: the certificate
        # holds trial by trial against the batched F̂.
        total = float(
            np.sum(problem.utilities.value(reclaimed.allocations[t]))
        )
        assert total >= ALPHA * float(blin.super_optimal_utility[t]) - 1e-9


@settings(max_examples=20, deadline=None)
@given(instance_params)
def test_water_fill_batch_matches_scalar(params):
    problems, bp = _build_batch(*params)
    result = water_fill_batch(bp.utilities, bp.n_trials, bp.pools)
    for t, problem in enumerate(problems):
        scalar = water_fill(problem.utilities, float(bp.pools[t]))
        assert np.array_equal(result.allocations[t], scalar.allocations)
        assert float(result.total_utility[t]) == scalar.total_utility
        assert float(result.marginal_price[t]) == scalar.marginal_price
        assert int(result.iterations[t]) == scalar.iterations


@settings(max_examples=20, deadline=None)
@given(instance_params)
def test_thread_order_batch_matches_scalar(params):
    from repro.core.algorithm2 import thread_order

    problems, bp = _build_batch(*params)
    blin = linearize_batch(bp)
    order = thread_order_batch(blin, bp.n_servers)
    for t in range(bp.n_trials):
        assert np.array_equal(
            order[t], thread_order(blin.trial(t), int(bp.n_servers[t]))
        )


# ---------------------------------------------------------------------------
# Harness level: backend="batch" is a pure throughput decision.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("dist_name", GENERATORS)
@pytest.mark.parametrize("n_jobs", [1, 2])
def test_backends_bit_identical_across_generators(dist_name, n_jobs):
    params = _point_params(dist_name)
    ctx_s = SolveContext(cache=LinearizationCache())
    names_s, utils_s = run_point_arrays(
        **params, include_raw=True, ctx=ctx_s, n_jobs=n_jobs, backend="scalar"
    )
    ctx_b = SolveContext(cache=LinearizationCache())
    names_b, utils_b = run_point_arrays(
        **params, include_raw=True, ctx=ctx_b, n_jobs=n_jobs, backend="batch"
    )
    assert names_s == names_b
    assert np.array_equal(utils_s, utils_b)  # rtol=0: same bits
    counters_b = ctx_b.counters.snapshot()
    assert counters_b.get("batch_trials") == params["trials"]
    assert "batch_fallbacks" not in counters_b
    assert _without_routing(ctx_s.counters.snapshot()) == _without_routing(counters_b)
    # Same span names with per-trial-equivalent interval counts.
    spans_s, spans_b = ctx_s.spans.snapshot(), ctx_b.spans.snapshot()
    assert set(spans_s) == set(spans_b)
    for name in spans_s:
        assert spans_s[name]["count"] == spans_b[name]["count"], name


def test_alpha_certificate_on_batch_backend():
    params = _point_params("powerlaw")
    names, utils = run_point_arrays(**params, backend="batch")
    so = utils[:, names.index("SO")]
    alg2 = utils[:, names.index("ALG2")]
    assert np.all(alg2 >= ALPHA * so * (1.0 - 1e-12))


def test_pchip_family_falls_back_to_scalar():
    params = _point_params("uniform")
    ctx = SolveContext()
    names_a, utils_a = run_point_arrays(
        **params, interpolator="pchip", ctx=ctx, backend="auto"
    )
    counters = ctx.counters.snapshot()
    assert counters.get("batch_fallbacks") == params["trials"]
    assert "batch_trials" not in counters
    names_s, utils_s = run_point_arrays(**params, interpolator="pchip",
                                        backend="scalar")
    assert names_a == names_s
    assert np.array_equal(utils_a, utils_s)


def test_strict_batch_backend_raises_with_reason():
    params = _point_params("uniform")
    with pytest.raises(ValueError, match="no vectorized evaluation"):
        run_point_arrays(**params, interpolator="pchip", backend="batch")
    with pytest.raises(ValueError, match="ALG1"):
        run_point_arrays(**params, include_alg1=True, backend="batch")


def test_backend_argument_is_validated():
    params = _point_params("uniform")
    with pytest.raises(ValueError, match="backend"):
        run_point_arrays(**params, backend="gpu")


# ---------------------------------------------------------------------------
# Representation plumbing.
# ---------------------------------------------------------------------------

def test_concat_batches_equals_joint_construction():
    rng = np.random.default_rng(3)
    parts = []
    vs, ws = [], []
    for _ in range(3):
        a, b = rng.uniform(size=7), rng.uniform(size=7)
        v, w = np.maximum(a, b), np.minimum(a, b)
        vs.append(v)
        ws.append(w)
        parts.append(QuadSplineBatch(v, w, 1000.0))
    joined = concat_batches(parts)
    joint = QuadSplineBatch(np.concatenate(vs), np.concatenate(ws), 1000.0)
    x = rng.uniform(0.0, 1000.0, size=21)
    assert np.array_equal(joined.value(x), joint.value(x))
    assert np.array_equal(joined.inverse_derivative_each(x / 1000.0),
                          joint.inverse_derivative_each(x / 1000.0))


def test_batch_problem_validation():
    dist = make_distribution("uniform")
    problem = make_problem(dist, 3, 2.0, seed=0)
    with pytest.raises(ValueError, match="equal trials"):
        BatchProblem(problem.utilities, n_trials=4, n_servers=3, capacity=1000.0)
    with pytest.raises(ValueError, match="at least one server"):
        BatchProblem(problem.utilities, n_trials=2, n_servers=0, capacity=1000.0)
    with pytest.raises(ValueError, match="positive and finite"):
        BatchProblem(problem.utilities, n_trials=2, n_servers=3, capacity=-1.0)
    with pytest.raises(ValueError, match="equal thread counts"):
        BatchProblem.from_problems([problem, make_problem(dist, 3, 3.0, seed=0)])


def test_batch_problem_round_trips_scalar_trials():
    dist = make_distribution("discrete")
    problems = [make_problem(dist, 4, 2.5, seed=k) for k in range(3)]
    bp = BatchProblem.from_problems(problems)
    for t, problem in enumerate(problems):
        restored = bp.problem(t)
        assert restored.n_servers == problem.n_servers
        assert restored.capacity == problem.capacity
        x = np.linspace(0.0, 1000.0, problem.n_threads)
        assert np.array_equal(restored.utilities.value(x),
                              problem.utilities.value(x))


def test_generic_batch_reports_no_vectorized_support():
    dist = make_distribution("uniform")
    problem = make_problem(dist, 3, 2.0, seed=0, interpolator="pchip")
    assert isinstance(problem.utilities, GenericBatch)
    assert not problem.utilities.supports_vectorized
    assert problem.utilities.supports_vectorized is not None


def test_registry_exposes_batch_solver_kind():
    spec = get_solver("algorithm2_batch")
    assert spec.kind == "batch"
    assert spec.supports_batch
    assert get_solver("alg2").supports_batch  # attach_batch_fn wired it
