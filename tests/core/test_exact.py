"""Exact solvers: partition enumeration and the discrete DP cross-check."""


import pytest
from hypothesis import given, settings

from repro.core.exact import exact_continuous, exact_discrete_value, iter_partitions
from repro.core.problem import AAProblem
from repro.utility.functions import CappedLinearUtility, LinearUtility, LogUtility

from tests.conftest import CAP, aa_problems


def _bell_like_count(n, m):
    """Number of partitions of n elements into at most m blocks (reference)."""
    # Stirling numbers of the second kind, summed.
    S = [[0] * (n + 1) for _ in range(n + 1)]
    S[0][0] = 1
    for i in range(1, n + 1):
        for k in range(1, i + 1):
            S[i][k] = k * S[i - 1][k] + S[i - 1][k - 1]
    return sum(S[n][k] for k in range(0, min(n, m) + 1))


@pytest.mark.parametrize("n,m", [(1, 1), (3, 2), (4, 2), (4, 4), (5, 3)])
def test_iter_partitions_count(n, m):
    parts = list(iter_partitions(n, m))
    assert len(parts) == _bell_like_count(n, m)


def test_iter_partitions_cover_all_elements():
    for blocks in iter_partitions(4, 3):
        flat = sorted(t for b in blocks for t in b)
        assert flat == [0, 1, 2, 3]


def test_iter_partitions_unique():
    seen = set()
    for blocks in iter_partitions(5, 2):
        key = tuple(sorted(tuple(b) for b in blocks))
        assert key not in seen
        seen.add(key)


def test_iter_partitions_empty():
    assert list(iter_partitions(0, 2)) == [[]]


def test_exact_solves_tightness_style_instance():
    p = AAProblem(
        [
            CappedLinearUtility(2.0, 0.5, 1.0),
            CappedLinearUtility(2.0, 0.5, 1.0),
            LinearUtility(1.0, 1.0),
        ],
        2,
        1.0,
    )
    a = exact_continuous(p)
    a.validate(p)
    assert a.total_utility(p) == pytest.approx(3.0)
    # The two capped threads must share one server.
    assert a.servers[0] == a.servers[1]
    assert a.servers[2] != a.servers[0]


def test_exact_single_server_equals_waterfill():
    from repro.allocation.waterfill import water_fill

    fns = [LogUtility(float(c), 1.0, CAP) for c in (1, 2, 3)]
    p = AAProblem(fns, 1, CAP)
    a = exact_continuous(p)
    wf = water_fill(p.utilities, CAP)
    assert a.total_utility(p) == pytest.approx(wf.total_utility, rel=1e-9)


def test_exact_guards_large_instances():
    p = AAProblem([LinearUtility(1.0, CAP)] * 13, 2, CAP)
    with pytest.raises(ValueError, match="n <= 12"):
        exact_continuous(p)


def test_exact_empty():
    p = AAProblem([], 2, CAP)
    assert exact_continuous(p).n_threads == 0


@settings(max_examples=20, deadline=None)
@given(aa_problems(max_threads=5, max_servers=3))
def test_exact_at_least_any_single_server_packing(problem):
    """Sanity: OPT >= utility of throwing everything on server 0."""
    from repro.allocation.waterfill import water_fill

    single = water_fill(problem.utilities, problem.capacity).total_utility
    opt = exact_continuous(problem).total_utility(problem)
    assert opt >= single - 1e-8 * (1 + abs(single))


def test_discrete_dp_matches_continuous_on_integral_instance():
    """Capped-linear utilities with integer breakpoints: the continuum
    optimum is attained at integer allocations, so both solvers agree."""
    fns = [
        CappedLinearUtility(2.0, 2.0, 4.0),
        CappedLinearUtility(1.0, 3.0, 4.0),
        CappedLinearUtility(3.0, 1.0, 4.0),
    ]
    p = AAProblem(fns, 2, 4.0)
    opt_cont = exact_continuous(p).total_utility(p)
    opt_disc = exact_discrete_value(fns, 2, 4)
    assert opt_disc == pytest.approx(opt_cont, rel=1e-9)


def test_discrete_dp_single_server_matches_fox():
    from repro.allocation.fox import fox_greedy

    fns = [LogUtility(float(c), 1.0, 6.0) for c in (1, 2, 3)]
    val = exact_discrete_value(fns, 1, 6)
    fox = fox_greedy(fns, 6).total_utility
    assert val == pytest.approx(fox, rel=1e-9)


def test_discrete_dp_unit_scaling():
    fns = [LinearUtility(1.0, 4.0), LinearUtility(2.0, 4.0)]
    # 8 half-units on one server ≡ 4 whole units.
    a = exact_discrete_value(fns, 1, 8, unit=0.5)
    b = exact_discrete_value(fns, 1, 4, unit=1.0)
    assert a == pytest.approx(b)


def test_discrete_dp_rejects_bad_args():
    with pytest.raises(ValueError):
        exact_discrete_value([LinearUtility(1.0, CAP)], 0, 4)
    with pytest.raises(ValueError):
        exact_discrete_value([LinearUtility(1.0, CAP)], 1, -1)


def test_discrete_dp_two_servers_beats_one():
    fns = [CappedLinearUtility(1.0, 4.0, 4.0), CappedLinearUtility(1.0, 4.0, 4.0)]
    one = exact_discrete_value(fns, 1, 4)
    two = exact_discrete_value(fns, 2, 4)
    assert two == pytest.approx(8.0)
    assert one == pytest.approx(4.0)
