"""AAProblem and Assignment: construction, validation, accounting."""

import numpy as np
import pytest

from repro.core.problem import ALPHA, AAProblem, Assignment
from repro.utility.functions import LinearUtility, LogUtility

CAP = 10.0


def test_alpha_constant_value():
    assert ALPHA == pytest.approx(2 * (np.sqrt(2) - 1))
    assert 0.828 < ALPHA < 0.829


def _problem(n=4, m=2):
    return AAProblem([LogUtility(1.0 + i, 1.0, CAP) for i in range(n)], m, CAP)


def test_problem_basic_properties():
    p = _problem(6, 3)
    assert p.n_threads == 6
    assert p.n_servers == 3
    assert p.beta == 2.0
    assert p.pool == 30.0


def test_problem_rejects_zero_servers():
    with pytest.raises(ValueError):
        _problem(4, 0)


def test_problem_rejects_fractional_server_count():
    with pytest.raises(ValueError, match="n_servers must be an integer"):
        _problem(4, 2.7)


def test_problem_accepts_integral_float_server_count():
    p = _problem(4, 2.0)
    assert p.n_servers == 2 and isinstance(p.n_servers, int)


def test_problem_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        AAProblem([LinearUtility(1.0, 0.0)], 1, 0.0)


def test_problem_rejects_cap_above_capacity():
    with pytest.raises(ValueError, match="server capacity"):
        AAProblem([LinearUtility(1.0, CAP + 1)], 1, CAP)


def test_empty_problem_allowed():
    p = AAProblem([], 2, CAP)
    assert p.n_threads == 0


def test_assignment_roundtrip():
    a = Assignment(servers=[0, 1, 0], allocations=[1.0, 2.0, 3.0])
    assert a.n_threads == 3
    assert a.threads_on(0).tolist() == [0, 2]
    assert a.server_loads(2).tolist() == [4.0, 2.0]


def test_assignment_shape_mismatch():
    with pytest.raises(ValueError):
        Assignment(servers=[0, 1], allocations=[1.0])


def test_total_utility():
    p = _problem(2, 2)
    a = Assignment(servers=[0, 1], allocations=[1.0, 2.0])
    expected = float(p.utilities.value(np.array([1.0, 2.0])).sum())
    assert a.total_utility(p) == pytest.approx(expected)


def test_validate_accepts_feasible():
    p = _problem(4, 2)
    a = Assignment(servers=[0, 0, 1, 1], allocations=[5.0, 5.0, 10.0, 0.0])
    a.validate(p)


def test_validate_rejects_overload():
    p = _problem(3, 2)
    a = Assignment(servers=[0, 0, 1], allocations=[6.0, 5.0, 1.0])
    with pytest.raises(ValueError, match="exceeds capacity"):
        a.validate(p)


def test_validate_rejects_out_of_range_server():
    p = _problem(2, 2)
    with pytest.raises(ValueError, match="in range"):
        Assignment(servers=[0, 2], allocations=[1.0, 1.0]).validate(p)
    with pytest.raises(ValueError, match="in range"):
        Assignment(servers=[-1, 0], allocations=[1.0, 1.0]).validate(p)


def test_validate_rejects_negative_allocation():
    p = _problem(2, 2)
    a = Assignment(servers=[0, 1], allocations=[-0.5, 1.0])
    with pytest.raises(ValueError, match="nonnegative"):
        a.validate(p)


def test_validate_rejects_allocation_beyond_cap():
    utilities = [LinearUtility(1.0, 4.0), LinearUtility(1.0, CAP)]
    p = AAProblem(utilities, 2, CAP)
    a = Assignment(servers=[0, 1], allocations=[5.0, 1.0])
    with pytest.raises(ValueError, match="domain"):
        a.validate(p)


def test_validate_rejects_wrong_length():
    p = _problem(3, 2)
    a = Assignment(servers=[0, 1], allocations=[1.0, 1.0])
    with pytest.raises(ValueError, match="covers"):
        a.validate(p)


def test_validate_tolerates_float_slack():
    p = _problem(2, 1)
    a = Assignment(servers=[0, 0], allocations=[5.0, 5.0 + 1e-12])
    a.validate(p)


def test_validate_empty_assignment():
    p = AAProblem([], 1, CAP)
    Assignment(servers=np.zeros(0, dtype=int), allocations=np.zeros(0)).validate(p)
