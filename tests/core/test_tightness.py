"""Theorem V.17: the 5/6 tightness instance, end to end."""

import pytest

from repro.core.algorithm1 import algorithm1
from repro.core.algorithm2 import algorithm2
from repro.core.exact import exact_continuous
from repro.core.problem import ALPHA
from repro.core.tightness import (
    TIGHTNESS_RATIO,
    tightness_instance,
    tightness_optimal_utility,
)


def test_optimal_utility_is_three():
    p = tightness_instance()
    opt = exact_continuous(p)
    assert opt.total_utility(p) == pytest.approx(tightness_optimal_utility())


@pytest.mark.parametrize("alg", [algorithm1, algorithm2], ids=lambda a: a.__name__)
def test_paper_algorithms_achieve_exactly_five_sixths(alg):
    p = tightness_instance()
    a = alg(p)
    a.validate(p)
    ratio = a.total_utility(p) / tightness_optimal_utility()
    assert ratio == pytest.approx(TIGHTNESS_RATIO)


def test_ratio_sits_between_alpha_and_one():
    assert ALPHA < TIGHTNESS_RATIO < 1.0


def test_tightness_constant():
    assert TIGHTNESS_RATIO == pytest.approx(5.0 / 6.0)


def test_reclaim_does_not_rescue_the_instance():
    """Reclamation reallocates within servers; the loss here is a bad
    *assignment* (the capped threads split), so the ratio stays 5/6."""
    from repro.core.postprocess import reclaim

    p = tightness_instance()
    a = reclaim(p, algorithm2(p))
    assert a.total_utility(p) / 3.0 == pytest.approx(TIGHTNESS_RATIO)
