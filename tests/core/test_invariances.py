"""Structural invariances of the pipeline (hypothesis-driven).

These tests pin down symmetries that must hold for *any* correct
implementation: scaling utilities scales solutions, resource units are
arbitrary, thread order does not change total utility under deterministic
tie-breaking by value, and adding useless threads or empty servers never
hurts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.linearize import linearize
from repro.core.problem import AAProblem
from repro.core.solve import solve
from repro.extensions.weighted import WeightedUtility
from repro.utility.functions import LogUtility, ZeroUtility

from tests.conftest import CAP, aa_problems, utility_lists


class _XScaled(LogUtility):
    """LogUtility with the x-axis stretched by ``s`` (u(x) = base(x/s))."""

    def __init__(self, coeff, scale, cap, s):
        super().__init__(coeff, scale * s, cap * s)
        self._s = s


@settings(max_examples=25, deadline=None)
@given(utility_lists(1, 6), st.floats(min_value=0.1, max_value=10.0))
def test_value_scaling_scales_solution(fns, scale):
    """Multiplying all utilities by k multiplies F and F̂ by k."""
    base = solve(AAProblem(fns, 2, CAP))
    scaled_fns = [WeightedUtility(f, scale) for f in fns]
    scaled = solve(AAProblem(scaled_fns, 2, CAP))
    assert scaled.total_utility == pytest.approx(
        scale * base.total_utility, rel=1e-6, abs=1e-9
    )
    assert scaled.super_optimal_utility == pytest.approx(
        scale * base.super_optimal_utility, rel=1e-6, abs=1e-9
    )


@settings(max_examples=20, deadline=None)
@given(st.floats(min_value=0.1, max_value=10.0))
def test_resource_units_are_arbitrary(s):
    """Stretching the resource axis by s (capacity and all utilities)
    leaves total utility unchanged."""
    base_fns = [LogUtility(1.0 + i, 1.0, CAP) for i in range(5)]
    base = solve(AAProblem(base_fns, 2, CAP))
    stretched = [_XScaled(1.0 + i, 1.0, CAP, s) for i in range(5)]
    scaled = solve(AAProblem(stretched, 2, CAP * s))
    assert scaled.total_utility == pytest.approx(base.total_utility, rel=1e-6)
    assert scaled.super_optimal_utility == pytest.approx(
        base.super_optimal_utility, rel=1e-6
    )
    # Allocations need not match elementwise — floating-point rescaling can
    # flip exact heap ties and regroup servers — but resource totals scale.
    assert float(np.sum(scaled.assignment.allocations)) == pytest.approx(
        s * float(np.sum(base.assignment.allocations)), rel=1e-6
    )


@settings(max_examples=25, deadline=None)
@given(aa_problems(max_threads=6, max_servers=3))
def test_adding_zero_threads_never_changes_value(problem):
    fns = problem.utilities.functions()
    augmented = AAProblem(
        fns + [ZeroUtility(problem.capacity)], problem.n_servers, problem.capacity
    )
    a = solve(problem).total_utility
    b = solve(augmented).total_utility
    assert b == pytest.approx(a, rel=1e-9, abs=1e-9)


@settings(max_examples=25, deadline=None)
@given(aa_problems(max_threads=6, max_servers=3))
def test_adding_a_server_never_hurts(problem):
    fns = problem.utilities.functions()
    fewer = solve(problem).total_utility
    more = solve(
        AAProblem(fns, problem.n_servers + 1, problem.capacity)
    ).total_utility
    assert more >= fewer - 1e-6 * (1 + abs(fewer))


@settings(max_examples=25, deadline=None)
@given(aa_problems(max_threads=6, max_servers=3))
def test_bound_is_permutation_invariant(problem):
    fns = problem.utilities.functions()
    shuffled = AAProblem(list(reversed(fns)), problem.n_servers, problem.capacity)
    a = linearize(problem).super_optimal_utility
    b = linearize(shuffled).super_optimal_utility
    assert a == pytest.approx(b, rel=1e-9, abs=1e-9)


@settings(max_examples=20, deadline=None)
@given(aa_problems(max_threads=6, max_servers=3))
def test_algorithm2_permutation_changes_value_little(problem):
    """Thread order may flip ties, but both orders carry the α guarantee
    against the same bound."""
    from repro.core.problem import ALPHA

    fns = problem.utilities.functions()
    shuffled = AAProblem(list(reversed(fns)), problem.n_servers, problem.capacity)
    bound = linearize(problem).super_optimal_utility
    for p in (problem, shuffled):
        value = solve(p).total_utility
        assert value >= ALPHA * bound - 1e-6 * (1 + bound)


@settings(max_examples=15, deadline=None)
@given(aa_problems(max_threads=5, max_servers=2))
def test_duplicating_the_system_doubles_the_bound(problem):
    """Two disjoint copies of (threads, servers) earn exactly twice F̂."""
    fns = problem.utilities.functions()
    doubled = AAProblem(fns + fns, 2 * problem.n_servers, problem.capacity)
    a = linearize(problem).super_optimal_utility
    b = linearize(doubled).super_optimal_utility
    assert b == pytest.approx(2 * a, rel=1e-6, abs=1e-9)
