"""Algorithm 2 vs a heap-free reference implementation.

The production path uses an indexed max-heap; this naive re-implementation
rescans the residual array each step.  Any divergence flags a heap bug —
the two must agree *exactly* (same tie-breaking: max residual, then lowest
server id).
"""

import numpy as np
from hypothesis import given, settings

from repro.core.algorithm2 import algorithm2, thread_order
from repro.core.linearize import linearize
from repro.core.problem import AAProblem, Assignment

from tests.conftest import aa_problems


def _naive_algorithm2(problem: AAProblem, lin) -> Assignment:
    n, m = problem.n_threads, problem.n_servers
    order = thread_order(lin, m)
    residual = np.full(m, problem.capacity)
    servers = np.full(n, -1, dtype=np.int64)
    alloc = np.zeros(n)
    for i in order:
        j = int(np.argmax(residual))  # first max = lowest id on ties
        c = min(float(lin.c_hat[i]), float(residual[j]))
        servers[i] = j
        alloc[i] = c
        residual[j] -= c
    return Assignment(servers=servers, allocations=alloc)


@settings(max_examples=60, deadline=None)
@given(aa_problems(max_threads=9, max_servers=4))
def test_heap_matches_naive_exactly(problem):
    lin = linearize(problem)
    fast = algorithm2(problem, lin)
    slow = _naive_algorithm2(problem, lin)
    assert np.array_equal(fast.servers, slow.servers)
    assert fast.allocations == slow.allocations if fast.n_threads == 0 else np.allclose(
        fast.allocations, slow.allocations, rtol=0, atol=0
    )


def test_heap_matches_naive_large_instance():
    from repro.workloads.generators import UniformDistribution, make_problem

    problem = make_problem(UniformDistribution(), 16, 12.0, 1000.0, seed=5)
    lin = linearize(problem)
    fast = algorithm2(problem, lin)
    slow = _naive_algorithm2(problem, lin)
    assert np.array_equal(fast.servers, slow.servers)
    assert np.array_equal(fast.allocations, slow.allocations)
