"""Discrete (integer-unit) pipeline: granularity, guarantee, convergence."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.discrete import (
    algorithm2_discrete,
    linearize_discrete,
    reclaim_discrete,
    solve_discrete,
)
from repro.core.linearize import linearize
from repro.core.problem import ALPHA, AAProblem
from repro.core.solve import solve
from repro.core.tightness import tightness_instance
from repro.utility.functions import LogUtility

from tests.conftest import CAP, aa_problems


def _problem(n=6, m=2):
    return AAProblem([LogUtility(1.0 + i, 1.0, CAP) for i in range(n)], m, CAP)


def test_grants_are_unit_multiples():
    p = _problem(7, 3)
    a, dlin = solve_discrete(p, unit=0.5, reclaim=False)
    units = a.allocations / 0.5
    assert np.allclose(units, np.round(units))


def test_feasible_and_every_thread_assigned():
    p = _problem(8, 3)
    a, _ = solve_discrete(p, unit=1.0)
    a.validate(p)
    assert np.all(a.servers >= 0)


def test_superoptimal_units_spend_pool():
    p = _problem(6, 2)
    dlin = linearize_discrete(p, unit=1.0)
    # LogUtility has positive marginals everywhere: all units are spent.
    assert int(np.sum(dlin.units_hat)) == 2 * dlin.capacity_units


def test_units_respect_single_server_cap():
    p = _problem(1, 4)  # one thread, lots of pool
    dlin = linearize_discrete(p, unit=1.0)
    assert dlin.units_hat[0] <= dlin.capacity_units


def test_discrete_bound_below_continuous():
    """Unit granularity can only reduce the super-optimal utility."""
    p = _problem(6, 2)
    cont = linearize(p).super_optimal_utility
    for unit in (5.0, 1.0, 0.25):
        disc = linearize_discrete(p, unit).super_optimal_utility
        assert disc <= cont + 1e-9


def test_alpha_guarantee_against_discrete_bound():
    p = _problem(9, 3)
    a, dlin = solve_discrete(p, unit=1.0)
    value = a.total_utility(p)
    assert value >= ALPHA * dlin.super_optimal_utility - 1e-9


@settings(max_examples=25, deadline=None)
@given(aa_problems(max_threads=7, max_servers=3))
def test_alpha_guarantee_property(problem):
    a, dlin = solve_discrete(problem, unit=1.0)
    value = a.total_utility(problem)
    assert value >= ALPHA * dlin.super_optimal_utility - 1e-6 * (
        1 + dlin.super_optimal_utility
    )


def test_converges_to_continuous_as_unit_shrinks():
    p = _problem(6, 2)
    cont = solve(p).total_utility
    gaps = []
    for unit in (2.5, 1.0, 0.1):
        a, _ = solve_discrete(p, unit=unit)
        gaps.append(abs(cont - a.total_utility(p)))
    assert gaps[-1] <= gaps[0] + 1e-9
    assert gaps[-1] < 0.01 * cont


def test_tightness_instance_with_half_units():
    p = tightness_instance()
    a, _ = solve_discrete(p, unit=0.5, reclaim=False)
    assert a.total_utility(p) == pytest.approx(2.5)


def test_reclaim_discrete_never_hurts():
    p = _problem(8, 3)
    dlin = linearize_discrete(p, unit=1.0)
    raw = algorithm2_discrete(p, dlin)
    rec = reclaim_discrete(p, raw, unit=1.0)
    rec.validate(p)
    assert rec.total_utility(p) >= raw.total_utility(p) - 1e-9
    assert np.array_equal(rec.servers, raw.servers)


def test_invalid_units_rejected():
    p = _problem(4, 2)
    with pytest.raises(ValueError):
        linearize_discrete(p, unit=0.0)
    with pytest.raises(ValueError):
        linearize_discrete(p, unit=CAP * 2)
    with pytest.raises(ValueError):
        reclaim_discrete(p, algorithm2_discrete(p, unit=1.0), unit=-1.0)


def test_coarse_unit_still_feasible():
    p = _problem(5, 2)
    a, dlin = solve_discrete(p, unit=CAP)  # one unit per server
    a.validate(p)
    assert dlin.capacity_units == 1
