"""Algorithms 1 and 2: feasibility, guarantee, determinism, structure."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.algorithm1 import algorithm1
from repro.core.algorithm2 import algorithm2, thread_order
from repro.core.exact import exact_continuous
from repro.core.linearize import linearize
from repro.core.postprocess import reclaim
from repro.core.problem import ALPHA, AAProblem
from repro.utility.functions import CappedLinearUtility, LogUtility

from tests.conftest import CAP, aa_problems

ALGORITHMS = [algorithm1, algorithm2]


def _problem(n=6, m=2):
    return AAProblem([LogUtility(1.0 + i, 1.0, CAP) for i in range(n)], m, CAP)


@pytest.mark.parametrize("alg", ALGORITHMS, ids=lambda a: a.__name__)
def test_assignment_is_feasible(alg):
    p = _problem(7, 3)
    alg(p).validate(p)


@pytest.mark.parametrize("alg", ALGORITHMS, ids=lambda a: a.__name__)
def test_every_thread_assigned(alg):
    p = _problem(7, 3)
    a = alg(p)
    assert np.all(a.servers >= 0)


@pytest.mark.parametrize("alg", ALGORITHMS, ids=lambda a: a.__name__)
def test_deterministic(alg):
    p = _problem(6, 2)
    a = alg(p)
    b = alg(p)
    assert np.array_equal(a.servers, b.servers)
    assert a.allocations == pytest.approx(b.allocations)


@pytest.mark.parametrize("alg", ALGORITHMS, ids=lambda a: a.__name__)
def test_single_server_is_superoptimal(alg):
    """m = 1: the pool bound is achievable, both algorithms achieve it."""
    p = _problem(5, 1)
    lin = linearize(p)
    a = reclaim(p, alg(p, lin))
    assert a.total_utility(p) == pytest.approx(lin.super_optimal_utility, rel=1e-6)


@pytest.mark.parametrize("alg", ALGORITHMS, ids=lambda a: a.__name__)
def test_fewer_threads_than_servers(alg):
    p = _problem(2, 5)
    a = alg(p)
    a.validate(p)
    # Each thread fits alone: gets its full super-optimal grant (= cap here).
    assert a.allocations == pytest.approx(np.full(2, CAP))


@pytest.mark.parametrize("alg", ALGORITHMS, ids=lambda a: a.__name__)
def test_threads_land_on_distinct_servers_when_spread_is_free(alg):
    p = _problem(3, 3)
    a = alg(p)
    assert len(set(a.servers.tolist())) == 3


@pytest.mark.parametrize("alg", ALGORITHMS, ids=lambda a: a.__name__)
def test_empty_problem(alg):
    p = AAProblem([], 2, CAP)
    a = alg(p)
    assert a.n_threads == 0


@settings(max_examples=60, deadline=None)
@given(aa_problems(max_threads=8, max_servers=4))
def test_alpha_guarantee_vs_bound_alg2(problem):
    """Theorem VI.1: F >= alpha * F̂ >= alpha * F* — the headline theorem."""
    lin = linearize(problem)
    a = algorithm2(problem, lin)
    a.validate(problem)
    value = a.total_utility(problem)
    assert value >= ALPHA * lin.super_optimal_utility - 1e-6 * (1 + lin.super_optimal_utility)


@settings(max_examples=40, deadline=None)
@given(aa_problems(max_threads=7, max_servers=3))
def test_alpha_guarantee_vs_bound_alg1(problem):
    """Theorem V.16 for Algorithm 1."""
    lin = linearize(problem)
    a = algorithm1(problem, lin)
    a.validate(problem)
    value = a.total_utility(problem)
    assert value >= ALPHA * lin.super_optimal_utility - 1e-6 * (1 + lin.super_optimal_utility)


@settings(max_examples=25, deadline=None)
@given(aa_problems(max_threads=6, max_servers=3))
def test_alpha_guarantee_vs_exact_optimum(problem):
    """F >= alpha * OPT, checked against the exhaustive solver."""
    opt = exact_continuous(problem).total_utility(problem)
    value = algorithm2(problem).total_utility(problem)
    assert value >= ALPHA * opt - 1e-6 * (1 + opt)


@settings(max_examples=25, deadline=None)
@given(aa_problems(max_threads=7, max_servers=3))
def test_reclaim_never_hurts(problem):
    lin = linearize(problem)
    raw = algorithm2(problem, lin)
    better = reclaim(problem, raw)
    better.validate(problem)
    assert better.total_utility(problem) >= raw.total_utility(problem) - 1e-9


def test_at_most_m_minus_one_unfull_threads_lemma_v6():
    """Lemma V.6: fewer than m threads receive less than their ĉ."""
    rng = np.random.default_rng(5)
    for _ in range(20):
        n, m = 12, 4
        fns = [LogUtility(float(c), 1.0, CAP) for c in rng.uniform(0.5, 5.0, n)]
        p = AAProblem(fns, m, CAP)
        lin = linearize(p)
        a = algorithm2(p, lin)
        unfull = np.sum(a.allocations < lin.c_hat - 1e-9)
        assert unfull <= m - 1


def test_at_most_one_unfull_thread_per_server_lemma_v5():
    rng = np.random.default_rng(6)
    for _ in range(20):
        n, m = 12, 4
        fns = [LogUtility(float(c), 1.0, CAP) for c in rng.uniform(0.5, 5.0, n)]
        p = AAProblem(fns, m, CAP)
        lin = linearize(p)
        a = algorithm2(p, lin)
        unfull = a.allocations < lin.c_hat - 1e-9
        for j in range(m):
            assert np.sum(unfull[a.servers == j]) <= 1


def test_first_m_threads_are_full_with_max_utility_lemma_v8():
    """Lemma V.8: each of the first m assigned threads receives its full ĉ
    and has utility at least the best unfull thread's super-optimal top."""
    rng = np.random.default_rng(11)
    for _ in range(15):
        n, m = 10, 3
        fns = [LogUtility(float(c), 1.0, CAP) for c in rng.uniform(0.5, 5.0, n)]
        p = AAProblem(fns, m, CAP)
        lin = linearize(p)
        from repro.core.algorithm2 import thread_order

        order = thread_order(lin, m)
        a = algorithm2(p, lin)
        head = order[:m]
        # Full allocation for the head threads.
        assert np.allclose(a.allocations[head], lin.c_hat[head])
        # Their tops dominate every unfull thread's top (gamma).
        unfull = np.nonzero(a.allocations < lin.c_hat - 1e-9)[0]
        if unfull.size:
            gamma = float(np.max(lin.top[unfull]))
            assert np.all(lin.top[head] >= gamma - 1e-9)


def test_steeper_unfull_threads_get_more_lemma_v10():
    """Lemma V.10: among unfull threads, higher linearized slope implies at
    least as much allocated resource."""
    rng = np.random.default_rng(23)
    checked = 0
    for trial in range(40):
        n, m = 12, 3
        fns = [
            CappedLinearUtility(float(s), float(b), CAP)
            for s, b in zip(rng.uniform(0.5, 4.0, n), rng.uniform(1.0, CAP, n))
        ]
        p = AAProblem(fns, m, CAP)
        lin = linearize(p)
        a = algorithm2(p, lin)
        unfull = np.nonzero(a.allocations < lin.c_hat - 1e-9)[0]
        if unfull.size < 2:
            continue
        checked += 1
        for i in unfull:
            for j in unfull:
                if lin.slope[i] > lin.slope[j] + 1e-9:
                    assert a.allocations[i] >= a.allocations[j] - 1e-9, (
                        f"slope {lin.slope[i]} thread got "
                        f"{a.allocations[i]} < {a.allocations[j]}"
                    )
    assert checked >= 3  # the property was actually exercised


def test_thread_order_two_keys():
    """Lines 1-2 of Algorithm 2: head by top, tail re-sorted by slope."""
    p = AAProblem(
        [
            CappedLinearUtility(1.0, 8.0, CAP),  # top 8, slope 1
            CappedLinearUtility(4.0, 2.0, CAP),  # top 8, slope 4
            CappedLinearUtility(3.0, 2.0, CAP),  # top 6, slope 3
            CappedLinearUtility(0.5, 10.0, CAP),  # top 5, slope 0.5
        ],
        2,
        CAP,
    )
    lin = linearize(p)
    order = thread_order(lin, 2).tolist()
    # Heads: the two largest tops (threads 0 and 1, stable tie by index).
    assert set(order[:2]) == {0, 1}
    # Tail sorted by slope: thread 2 (slope 3) before thread 3 (slope 0.5).
    assert order[2:] == [2, 3]


def test_algorithm1_unfull_step_takes_largest_leftover():
    """Forces the line-9 branch: ĉ = [6, 6, 8] on two size-10 servers.

    Thread 2 (top 7.2) fills server 0 to residual 2; thread 0 fits fully on
    server 1 (residual 4); thread 1 then fits nowhere and must take the
    largest leftover, 4 on server 1.
    """
    p = AAProblem(
        [
            CappedLinearUtility(1.0, 6.0, CAP),
            CappedLinearUtility(1.0, 6.0, CAP),
            CappedLinearUtility(0.9, 8.0, CAP),
        ],
        2,
        CAP,
    )
    lin = linearize(p)
    assert lin.c_hat == pytest.approx([6.0, 6.0, 8.0])
    a = algorithm1(p, lin)
    a.validate(p)
    assert a.allocations[2] == pytest.approx(8.0)  # top thread, placed first
    assert a.allocations[0] == pytest.approx(6.0)
    assert a.allocations[1] == pytest.approx(4.0)  # unfull: largest leftover
    assert a.servers[1] == a.servers[0]


def test_shared_linearization_gives_same_superopt():
    p = _problem(6, 2)
    lin = linearize(p)
    a1 = algorithm1(p, lin)
    a2 = algorithm2(p, lin)
    # Different assignments allowed, but both feasible and both guaranteed.
    for a in (a1, a2):
        a.validate(p)
        assert a.total_utility(p) >= ALPHA * lin.super_optimal_utility - 1e-9
