"""solve() facade and Solution certificates."""

import pytest

from repro.core.problem import ALPHA, AAProblem
from repro.core.solve import solve
from repro.core.tightness import tightness_instance
from repro.utility.functions import LogUtility, ZeroUtility

CAP = 10.0


def _problem(n=6, m=2):
    return AAProblem([LogUtility(1.0 + i, 1.0, CAP) for i in range(n)], m, CAP)


def test_solution_fields():
    sol = solve(_problem())
    assert sol.algorithm == "alg2"
    assert sol.total_utility > 0
    assert sol.super_optimal_utility >= sol.total_utility - 1e-9
    assert 0 < sol.certified_ratio <= 1 + 1e-9


def test_meets_guarantee_flag():
    sol = solve(_problem())
    assert sol.meets_guarantee
    assert sol.certified_ratio >= ALPHA - 1e-9


def test_alg1_selection():
    sol = solve(_problem(), algorithm="alg1")
    assert sol.algorithm == "alg1"
    assert sol.meets_guarantee


def test_unknown_algorithm_rejected():
    with pytest.raises(ValueError, match="unknown algorithm"):
        solve(_problem(), algorithm="magic")


def test_reclaim_improves_or_matches_raw():
    p = tightness_instance()
    raw = solve(p, reclaim=False)
    rec = solve(p, reclaim=True)
    assert rec.total_utility >= raw.total_utility - 1e-12


def test_raw_mode_reproduces_paper_algorithm():
    p = tightness_instance()
    sol = solve(p, reclaim=False)
    assert sol.total_utility == pytest.approx(2.5)


def test_shared_linearization_reused():
    from repro.core.linearize import linearize

    p = _problem()
    lin = linearize(p)
    sol = solve(p, lin=lin)
    assert sol.linearization is lin


def test_zero_utility_instance_ratio_is_one():
    p = AAProblem([ZeroUtility(CAP), ZeroUtility(CAP)], 2, CAP)
    sol = solve(p)
    assert sol.super_optimal_utility == 0.0
    assert sol.certified_ratio == 1.0
    assert sol.meets_guarantee


def test_assignment_validated_on_return():
    sol = solve(_problem(8, 3))
    # Would have raised inside solve() otherwise; double-check here.
    sol.assignment.validate(_problem(8, 3))
