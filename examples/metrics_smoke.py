#!/usr/bin/env python3
"""Observability smoke run (also the CI metrics job).

Boots an :class:`~repro.service.AllocationService` with its HTTP
introspection sidecar, drives a burst of arrivals and a rebalance, then
verifies the whole plane from the outside:

* ``/metrics`` serves Prometheus text with the canonical series present;
* ``/healthz`` reports ``ok`` and a certified utility/bound ratio ≥ α;
* ``QueryMetrics`` over the in-process transport agrees with HTTP;
* a span-tree trace exported to Chrome trace-event JSON has the
  ``solve.<name>`` root with the pipeline stages as children.

Exits non-zero on any violated invariant.

Run:  PYTHONPATH=src python examples/metrics_smoke.py
"""

import json
import sys
import urllib.request

from repro.core.problem import ALPHA
from repro.core.solve import solve
from repro.engine import SolveContext
from repro.observability import GAUGE_RATIO, REQUEST_LATENCY, Tracer, chrome_trace
from repro.service import (
    AllocationService,
    ClusterState,
    InProcessTransport,
    MetricsHttpServer,
    QueryMetrics,
    Rebalance,
    SubmitThread,
)
from repro.utility.functions import LogUtility
from repro.workloads.generators import UniformDistribution, make_problem

N_SERVERS = 3
CAPACITY = 100.0


def check(ok: bool, what: str) -> None:
    if not ok:
        print(f"FAIL: {what}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {what}")


def fetch(url: str) -> tuple[int, str]:
    with urllib.request.urlopen(url, timeout=5.0) as resp:
        return resp.status, resp.read().decode()


def main() -> int:
    service = AllocationService(ClusterState(N_SERVERS, CAPACITY))
    bus = InProcessTransport(service)

    bus.request(
        *[SubmitThread(f"t{k}", LogUtility(1.0 + k, 2.0, CAPACITY)) for k in range(8)]
    )
    bus.request(Rebalance())

    with MetricsHttpServer(service, port=0) as httpd:
        base = f"http://127.0.0.1:{httpd.port}"

        status, text = fetch(base + "/metrics")
        check(status == 200, "/metrics responds 200")
        for series in (GAUGE_RATIO, REQUEST_LATENCY + "_bucket",
                       "aart_service_steps_total", "aart_threads"):
            check(series in text, f"/metrics exports {series}")

        status, body = fetch(base + "/healthz")
        health = json.loads(body)
        check(status == 200 and health["status"] == "ok", "/healthz reports ok")
        check(
            health["last_ratio"] >= ALPHA,
            f"certified ratio {health['last_ratio']:.4f} ≥ α={ALPHA:.4f}",
        )

        (resp,) = bus.request(QueryMetrics())
        check(resp.ok, "QueryMetrics round trip")
        gauges = {
            i["name"]: i["value"]
            for i in resp.data["metrics"]["instruments"]
            if i["kind"] == "gauge" and not i["labels"]
        }
        check(gauges[GAUGE_RATIO] == health["last_ratio"],
              "protocol and HTTP agree on the gap ratio")

    # Span-tree export: one root per solve, pipeline stages beneath it.
    ctx = SolveContext(seed=0, tracer=Tracer())
    solve(make_problem(UniformDistribution(), 2, 3.0, seed=1), "alg2", ctx=ctx)
    doc = chrome_trace(ctx.tracer.snapshot())
    names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
    check(names.count("solve.alg2") == 1, "one solve.alg2 root span")
    check({"linearize", "alg2"} <= set(names), "pipeline stages traced")

    print("metrics smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
