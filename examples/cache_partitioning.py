#!/usr/bin/env python3
"""Multicore shared-cache partitioning (the paper's first motivation).

Generates synthetic memory traces for eight threads with very different
locality (hot/cold Zipf mixes, a streaming scan, a phased working set),
profiles them once with the Mattson stack-distance algorithm, then plans
thread-to-core placement and per-core way partitions with Algorithm 2.
Realized hits are measured on the *true* (possibly non-concave) hit
curves, so the comparison against the UU/RR heuristics is honest.

Run:  python examples/cache_partitioning.py
"""

import numpy as np

from repro.simulate.cache import (
    miss_ratio_curve,
    plan_partitioning,
    sequential_trace,
    working_set_trace,
    zipf_trace,
)

N_CORES = 2
WAYS = 16  # ways per core's partitionable last-level cache slice
TRACE_LEN = 4000


def build_traces(seed: int = 7) -> list:
    rng = np.random.default_rng(seed)
    traces = []
    # Five cache-friendly threads with varying reuse skew.
    for k in range(5):
        s = float(rng.uniform(0.6, 1.6))
        traces.append(zipf_trace(60, TRACE_LEN, s=s, seed=rng))
    # A streaming scan: classic cache polluter (step-shaped hit curve).
    traces.append(sequential_trace(12, TRACE_LEN))
    # A phased working-set thread.
    traces.append(working_set_trace([5, 9], TRACE_LEN // 2, seed=rng))
    # One more moderately skewed thread.
    traces.append(zipf_trace(30, TRACE_LEN, s=1.0, seed=rng))
    return traces


def main() -> None:
    traces = build_traces()
    print(f"{len(traces)} threads, {N_CORES} cores x {WAYS} ways")

    print("\nper-thread miss ratio at 4 ways (profiling preview):")
    for i, trace in enumerate(traces):
        mrc = miss_ratio_curve(trace, WAYS)
        print(f"  thread {i}: mr(4) = {mrc[4]:.3f}, mr({WAYS}) = {mrc[WAYS]:.3f}")

    results = {}
    for method in ("alg2", "UU", "RU", "RR"):
        plan = plan_partitioning(traces, N_CORES, WAYS, method=method, seed=1)
        results[method] = plan
        print(f"\n{method}: realized hits = {plan.realized_hits:,.0f}")
        for core in range(N_CORES):
            members = np.nonzero(plan.cores == core)[0]
            ways = plan.ways[members]
            pretty = ", ".join(f"t{m}:{w}" for m, w in zip(members, ways))
            print(f"  core {core}: {pretty}")

    ours = results["alg2"].realized_hits
    print("\nsummary (higher is better):")
    for method, plan in results.items():
        marker = " <- joint assign+allocate" if method == "alg2" else ""
        print(f"  {method:>4}: {plan.realized_hits:>9,.0f} hits{marker}")
    print(
        f"\nenvelope gap (concavity assumption stress): "
        f"{results['alg2'].max_envelope_gap:,.0f} hits on the worst thread "
        "(the streaming scan)"
    )
    assert ours >= max(p.realized_hits for m, p in results.items() if m != "alg2") * 0.99


if __name__ == "__main__":
    main()
