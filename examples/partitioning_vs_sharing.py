#!/usr/bin/env python3
"""Why partition at all? Way-isolation vs unmanaged cache sharing.

Replays the same thread-to-core placement twice: once with the AA-planned
way partition enforced, once with each core's threads fighting over one
shared LRU.  A streaming polluter thread makes the difference vivid — the
partition contains it to the few ways it deserves.

Run:  python examples/partitioning_vs_sharing.py
"""

import numpy as np

from repro.simulate.cache import (
    compare_partitioned_vs_shared,
    profile_traces,
    sequential_trace,
    zipf_trace,
)

N_CORES = 2
WAYS = 12


def main() -> None:
    rng = np.random.default_rng(4)
    traces = [
        zipf_trace(40, 3000, s=1.5, seed=rng),   # hot, cache-friendly
        zipf_trace(40, 3000, s=1.2, seed=rng),
        zipf_trace(25, 3000, s=1.0, seed=rng),
        sequential_trace(60, 3000),               # the polluter
        zipf_trace(30, 3000, s=1.3, seed=rng),
        zipf_trace(20, 3000, s=0.9, seed=rng),
    ]
    print(f"{len(traces)} threads, {N_CORES} cores x {WAYS} ways "
          "(thread 3 is a streaming scan)")

    cmp = compare_partitioned_vs_shared(traces, N_CORES, WAYS, method="alg2")
    plan = cmp.plan
    curves = profile_traces(traces, WAYS)

    print("\nplacement and per-thread outcome:")
    print(f"  {'thread':>6} {'core':>4} {'ways':>4} {'partitioned':>11} {'shared':>7}")
    for i in range(len(traces)):
        part_hits = curves[i, plan.ways[i]]
        print(f"  {i:>6} {plan.cores[i]:>4} {plan.ways[i]:>4} "
              f"{part_hits:>11,.0f} {cmp.shared_per_thread[i]:>7,.0f}")

    print(f"\ntotal partitioned hits: {cmp.partitioned_hits:,.0f}")
    print(f"total shared hits     : {cmp.shared_hits:,.0f}")
    gain = cmp.partitioning_gain
    print(f"partitioning gain     : {gain:+,.0f} "
          f"({gain / max(cmp.shared_hits, 1):.1%})")


if __name__ == "__main__":
    main()
