#!/usr/bin/env python3
"""Price-discovery oracle-equivalence smoke run (also the CI scaling job).

Verifies the price-discovery solver's contract from the outside:

* on paper-shaped instances its utility stays within 1% of the ``alg2``
  oracle (the regime the solver targets: beta = 8, thread caps well
  below pooled capacity);
* the plan is feasible and every server's refill is water-fill optimal
  (KKT certificate);
* the registered scalar solver and its trial-batched twin return the
  **same bits** and the same per-trial-equivalent counter totals;
* the certificate ratio against the super-optimal bound F̂ never
  exceeds 1;
* a deadline abandons the iteration with ``SolveTimeout``.

Exits non-zero on any violated invariant.

Run:  PYTHONPATH=src python examples/price_oracle_smoke.py
"""

import sys

import numpy as np

from repro.allocation import kkt_violation, price_discovery_batch_kernel
from repro.core.batch import BatchProblem
from repro.core.solve import solve
from repro.engine import SolveContext, SolveTimeout, run_solver
from repro.workloads.generators import UniformDistribution, make_problem

DIST = UniformDistribution()


def fail(msg: str) -> None:
    print(f"FAIL: {msg}")
    sys.exit(1)


def main() -> None:
    # 1. oracle parity + certificate on paper-shaped instances
    for m, seed in ((16, 0), (32, 1), (64, 2)):
        problem = make_problem(DIST, n_servers=m, beta=8.0, capacity=1000.0, seed=seed)
        oracle = run_solver("alg2", problem).assignment.total_utility(problem)
        sol = solve(problem, algorithm="price_discovery")
        if sol.total_utility < oracle * 0.99:
            fail(
                f"m={m}: price utility {sol.total_utility:.2f} is more than "
                f"1% below the alg2 oracle {oracle:.2f}"
            )
        if sol.certified_ratio > 1.0 + 1e-9:
            fail(f"m={m}: certificate ratio {sol.certified_ratio} above 1")
        print(
            f"ok m={m:3d}: price/alg2 = {sol.total_utility / oracle:.5f}, "
            f"certified {sol.certified_ratio:.4f}"
        )

    # 2. per-server KKT optimality of the refill stage
    problem = make_problem(DIST, n_servers=16, beta=8.0, capacity=1000.0, seed=3)
    a = run_solver("price_discovery", problem).assignment
    for j in range(problem.n_servers):
        members = np.where(a.servers == j)[0]
        if members.size == 0:
            continue
        load = float(a.allocations[members].sum())
        v = kkt_violation(problem.utilities.subset(members), a.allocations[members], load)
        if v > 1e-3:
            fail(f"server {j}: refill not KKT-optimal (violation {v})")
    print("ok refill: every server KKT-optimal")

    # 3. scalar vs batch bit-identity and counter parity
    problems = [
        make_problem(DIST, n_servers=8, beta=8.0, capacity=1000.0, seed=40 + t)
        for t in range(4)
    ]
    ctx_b = SolveContext()
    batch = price_discovery_batch_kernel(BatchProblem.from_problems(problems), ctx_b)
    summed: dict = {}
    for t, p in enumerate(problems):
        ctx_s = SolveContext()
        scalar = run_solver("price_discovery", p, ctx=ctx_s).assignment
        if not (
            np.array_equal(scalar.servers, batch.servers[t])
            and np.array_equal(scalar.allocations, batch.allocations[t])
        ):
            fail(f"trial {t}: batch twin is not bit-identical to the scalar solver")
        for name, value in ctx_s.counters.items():
            summed[name] = summed.get(name, 0) + value
    if dict(ctx_b.counters.items()) != summed:
        fail(
            f"counter parity broken: batch {dict(ctx_b.counters.items())} "
            f"!= scalar sums {summed}"
        )
    print("ok batch twin: bit-identical, counters match per-trial sums")

    # 4. deadline abandonment
    big = make_problem(DIST, n_servers=64, beta=8.0, capacity=1000.0, seed=9)
    try:
        run_solver("price_discovery", big, ctx=SolveContext(budget_s=1e-9))
    except SolveTimeout:
        print("ok deadline: SolveTimeout raised mid-iteration")
    else:
        fail("deadline ignored: expected SolveTimeout")

    print("price-discovery oracle smoke: all invariants hold")


if __name__ == "__main__":
    main()
