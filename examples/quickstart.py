#!/usr/bin/env python3
"""Quickstart: solve one assign-and-allocate instance end to end.

Builds a small mixed workload, solves it with the paper's Algorithm 2,
prints the placement, and compares against the super-optimal bound, the
exact optimum, and the four simple heuristics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AAProblem, ALPHA, exact_continuous, solve
from repro.assign import HEURISTICS
from repro.utility import CappedLinearUtility, LogUtility, PowerUtility, SaturatingUtility

CAPACITY = 100.0  # resource per server (e.g. GB of memory)


def main() -> None:
    # Eight threads with diverse diminishing-returns profiles.
    threads = [
        ("db-cache", LogUtility(coeff=6.0, scale=10.0, cap=CAPACITY)),
        ("web-fe-1", SaturatingUtility(vmax=5.0, k=8.0, cap=CAPACITY)),
        ("web-fe-2", SaturatingUtility(vmax=5.0, k=8.0, cap=CAPACITY)),
        ("batch-ml", PowerUtility(coeff=1.2, beta=0.6, cap=CAPACITY)),
        ("batch-etl", PowerUtility(coeff=0.8, beta=0.8, cap=CAPACITY)),
        ("fixed-app", CappedLinearUtility(slope=0.2, breakpoint=30.0, cap=CAPACITY)),
        ("logger", LogUtility(coeff=1.0, scale=5.0, cap=CAPACITY)),
        ("metrics", LogUtility(coeff=0.5, scale=2.0, cap=CAPACITY)),
    ]
    names = [n for n, _ in threads]
    problem = AAProblem([f for _, f in threads], n_servers=3, capacity=CAPACITY)

    sol = solve(problem)  # Algorithm 2 + reclamation, certified >= 0.828 OPT
    print(f"total utility      : {sol.total_utility:.3f}")
    print(f"super-optimal bound: {sol.super_optimal_utility:.3f}")
    print(f"certified ratio    : {sol.certified_ratio:.4f} (guarantee: {ALPHA:.4f})")

    print("\nplacement:")
    fns = problem.utilities.functions()
    for j in range(problem.n_servers):
        members = sol.assignment.threads_on(j)
        load = float(np.sum(sol.assignment.allocations[members]))
        print(f"  server {j} (load {load:6.1f}/{CAPACITY:g}):")
        for i in members:
            grant = float(sol.assignment.allocations[i])
            print(
                f"    {names[i]:<10} gets {grant:6.1f} "
                f"-> utility {float(fns[i].value(grant)):.3f}"
            )

    # Small enough for the exact solver: how close are we really?
    opt = exact_continuous(problem).total_utility(problem)
    print(f"\nexact optimum      : {opt:.3f}  (achieved {sol.total_utility / opt:.2%})")

    print("\nversus the paper's simple heuristics:")
    for name, heuristic in HEURISTICS.items():
        value = heuristic(problem, seed=0).total_utility(problem)
        print(f"  {name}: {value:8.3f}  (alg2 is {sol.total_utility / value:.2f}x)")


if __name__ == "__main__":
    main()
