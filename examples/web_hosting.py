#!/usr/bin/env python3
"""Hosting-center planning with measured goodput (the paper's second motivation).

Sixteen web services — a few heavy hitters among many small sites — are
placed on four servers.  Each service is an M/M/1/K queue whose goodput
as a function of granted processing capacity forms its (concavified)
utility.  After planning, every service's queue is *simulated* at its
granted capacity, closing the plan-versus-measured loop the paper's
conclusion calls for.

Run:  python examples/web_hosting.py
"""

from repro.simulate.hosting import HostingCenter, random_services

SERVERS = 4
CAPACITY = 50.0
HORIZON = 2000.0


def main() -> None:
    services = random_services(16, seed=42)
    center = HostingCenter(n_servers=SERVERS, capacity=CAPACITY)

    heavy = [s for s in services if s.arrival_rate > 15]
    print(f"{len(services)} services ({len(heavy)} heavy hitters), "
          f"{SERVERS} servers x {CAPACITY:g} capacity units")

    print(f"\n{'method':>6}  {'planned value':>13}  {'measured value':>14}")
    results = {}
    for method in ("alg2", "UU", "UR", "RU", "RR"):
        plan = center.plan(services, method=method, seed=3)
        measured = center.measure(plan, horizon=HORIZON, seed=4)
        results[method] = (plan, measured)
        print(f"{method:>6}  {plan.planned_value:>13.2f}  {measured:>14.2f}")

    ours_plan, ours_measured = results["alg2"]
    print("\nalg2 grants for the heavy hitters:")
    for svc, grant in zip(ours_plan.services, ours_plan.grants):
        if svc.arrival_rate > 15:
            print(f"  {svc.name}: lam={svc.arrival_rate:5.1f}, "
                  f"grant={float(grant):5.1f}, "
                  f"goodput(planned)={svc.goodput(float(grant)):5.2f}")

    gap = abs(ours_measured - ours_plan.planned_value) / ours_plan.planned_value
    print(f"\nplan-vs-measured gap (alg2): {gap:.1%} "
          "(queueing noise + concave envelope)")


if __name__ == "__main__":
    main()
