#!/usr/bin/env python3
"""Dynamic cache repartitioning across workload phases.

Threads change behaviour mid-run (a zipf-friendly thread turns into a
scan, and vice versa).  A single static partition planned from whole-trace
profiles is wrong in *both* halves; re-planning at phase boundaries —
the paper's dynamic-reoptimization future work — recovers the difference.

Run:  python examples/phased_repartitioning.py
"""

import numpy as np

from repro.simulate.cache import (
    compare_static_vs_phased,
    sequential_trace,
    working_set_trace,
    zipf_trace,
)

N_CORES = 2
WAYS = 12
HALF = 2000


def build_traces(seed: int = 3) -> list:
    rng = np.random.default_rng(seed)
    traces = []
    # Two phase-flipping threads (friendly <-> scanning).
    traces.append(np.concatenate([
        zipf_trace(10, HALF, s=1.5, seed=rng),
        sequential_trace(40, HALF) + 1000,
    ]))
    traces.append(np.concatenate([
        sequential_trace(40, HALF) + 2000,
        zipf_trace(10, HALF, s=1.5, seed=rng) + 3000,
    ]))
    # Two stable threads.
    traces.append(zipf_trace(25, 2 * HALF, s=1.1, seed=rng) + 4000)
    traces.append(working_set_trace([6, 6], HALF, seed=rng) + 5000)
    return traces


def main() -> None:
    traces = build_traces()
    cmp = compare_static_vs_phased(traces, N_CORES, WAYS, n_phases=2)

    print(f"{len(traces)} threads ({N_CORES} cores x {WAYS} ways), 2 phases; "
          "threads 0/1 flip behaviour at the boundary\n")
    print(f"{'phase':>5}  {'static plan':>11}  {'re-planned':>10}")
    for k, (s, d) in enumerate(zip(cmp.per_phase_static, cmp.per_phase_dynamic)):
        print(f"{k:>5}  {s:>11,.0f}  {d:>10,.0f}")
    print(f"{'sum':>5}  {cmp.static_hits:>11,.0f}  {cmp.dynamic_hits:>10,.0f}")
    gain = cmp.repartitioning_gain
    print(f"\nrepartitioning gain: {gain:+,.0f} hits "
          f"({gain / max(cmp.static_hits, 1):.1%})")
    print("\nstatic plan ways per thread:", cmp.static_plan.ways.tolist())


if __name__ == "__main__":
    main()
