#!/usr/bin/env python3
"""Heterogeneous cluster planning (the paper's first future-work item).

A small fleet with mixed machine sizes (two big boxes, three medium, one
tiny) hosts a batch of services with diverse concave utilities.  The
heterogeneous extension generalizes Algorithm 2's greedy to per-server
capacities; no worst-case factor is proven (the paper's analysis assumes
homogeneity), but the pool bound still certifies each run.

Run:  python examples/heterogeneous_cluster.py
"""

import numpy as np

from repro.extensions.heterogeneous import HeterogeneousProblem, algorithm2_hetero
from repro.utility import LogUtility, PowerUtility, SaturatingUtility

CAPACITIES = [128.0, 128.0, 64.0, 64.0, 64.0, 16.0]


def build_workload(seed: int = 3) -> list:
    rng = np.random.default_rng(seed)
    cmax = max(CAPACITIES)
    fns = []
    for k in range(14):
        kind = k % 3
        if kind == 0:
            fns.append(LogUtility(float(rng.uniform(1, 6)), float(rng.uniform(4, 20)), cmax))
        elif kind == 1:
            fns.append(PowerUtility(float(rng.uniform(0.5, 2)), float(rng.uniform(0.4, 0.9)), cmax))
        else:
            fns.append(SaturatingUtility(float(rng.uniform(2, 8)), float(rng.uniform(4, 16)), cmax))
    return fns


def main() -> None:
    problem = HeterogeneousProblem(build_workload(), capacities=CAPACITIES)
    sol = algorithm2_hetero(problem)

    print(f"{problem.n_threads} threads on machines {[int(c) for c in CAPACITIES]}")
    print(f"total utility   : {sol.total_utility:.3f}")
    print(f"pool upper bound: {sol.upper_bound:.3f}")
    print(f"certified ratio : {sol.certified_ratio:.4f} (no worst-case theory here)")

    loads = np.bincount(sol.servers, weights=sol.allocations,
                        minlength=problem.n_servers)
    print("\nper-machine loads:")
    for j, (cap, load) in enumerate(zip(CAPACITIES, loads)):
        members = np.nonzero(sol.servers == j)[0]
        bar = "#" * int(24 * load / cap)
        print(f"  machine {j} [{cap:5.0f}]: {load:6.1f} |{bar:<24}| threads {members.tolist()}")

    # Sanity: the big boxes should carry the most resource.
    order = np.argsort(-loads)
    print(f"\nheaviest machines: {order[:2].tolist()} (expected the two 128s)")


if __name__ == "__main__":
    main()
