#!/usr/bin/env python3
"""Multi-resource placement via dominant shares (paper future work #2).

Servers offer CPU *and* memory; each job consumes a fixed bundle per task
unit (Leontief demands) and earns concave utility in its task rate.  The
dominant-share scalarization reduces this to standard AA conservatively:
plans are always feasible for every resource, and the utilization report
shows where non-dominant resources idle.

Run:  python examples/multiresource_cluster.py
"""

import numpy as np

from repro.extensions.multiresource import MultiResourceProblem, solve_multiresource
from repro.utility import LogUtility, PowerUtility

RESOURCES = ("cpu", "mem")
CAPACITIES = [32.0, 128.0]  # per server: 32 cores, 128 GB
SERVERS = 3


def main() -> None:
    rng = np.random.default_rng(11)
    jobs, demands = [], []
    profiles = [
        ("cpu-bound ", [1.0, 1.0]),
        ("mem-bound ", [0.2, 6.0]),
        ("balanced  ", [0.5, 2.0]),
    ]
    for k in range(9):
        name, bundle = profiles[k % 3]
        jitter = rng.uniform(0.8, 1.25, size=2)
        demands.append(np.asarray(bundle) * jitter)
        if k % 2 == 0:
            jobs.append(PowerUtility(float(rng.uniform(0.8, 2.0)),
                                     float(rng.uniform(0.5, 0.9)), cap=200.0))
        else:
            jobs.append(LogUtility(float(rng.uniform(1.0, 4.0)),
                                   float(rng.uniform(2.0, 8.0)), cap=200.0))

    problem = MultiResourceProblem(jobs, np.array(demands), SERVERS, CAPACITIES)
    sol = solve_multiresource(problem)

    print(f"{problem.n_threads} jobs, {SERVERS} servers x "
          f"({CAPACITIES[0]:g} cpu, {CAPACITIES[1]:g} GB)")
    print(f"total utility   : {sol.total_utility:.3f}")
    print(f"certified ratio : {sol.scalar.certified_ratio:.4f} (vs dominant-share bound)")

    print("\njob task rates (dominant share model):")
    shares = problem.dominant_share_per_unit()
    for k, (units, s) in enumerate(zip(sol.task_units, shares)):
        kind = profiles[k % 3][0]
        print(f"  job {k} [{kind}] rate {units:7.2f}  "
              f"(dominant share/unit {s:.4f})")

    print("\nper-server utilization (fraction of capacity):")
    report = sol.utilization_report()
    header = "  server  " + "  ".join(f"{r:>5}" for r in RESOURCES)
    print(header)
    for j in range(SERVERS):
        cells = "  ".join(f"{report[j, r]:5.2f}" for r in range(len(RESOURCES)))
        print(f"  {j:>6}  {cells}")
    print("\n(1.00 in a column = that resource is the binding one;"
          " low values show conservative slack of the reduction)")


if __name__ == "__main__":
    main()
