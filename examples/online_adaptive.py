#!/usr/bin/env python3
"""Online scheduling with learned utilities (the paper's future-work loop).

Threads arrive with *unknown* utility curves.  The adaptive scheduler
starts from a weak prior, observes noisy throughput measurements at the
allocations it actually grants (plus occasional exploration probes),
refits concave utilities by NNLS hinge regression, and periodically
re-plans with Algorithm 2 under a migration cost.

Run:  python examples/online_adaptive.py
"""

import numpy as np

from repro.extensions.online import AdaptiveScheduler
from repro.utility import SaturatingUtility

SERVERS = 3
CAPACITY = 30.0
ROUNDS = 12
NOISE = 0.05


def true_value(truths, scheduler) -> float:
    """Ground-truth utility of the scheduler's current assignment."""
    a = scheduler.assignment()
    return sum(
        float(truths[tid].value(c))
        for tid, c in zip(scheduler.thread_ids, a.allocations)
    )


def main() -> None:
    rng = np.random.default_rng(5)
    # Hidden ground truth: saturating throughput curves of varied scale.
    truths = {
        f"svc-{k}": SaturatingUtility(
            vmax=float(rng.uniform(1.0, 8.0)),
            k=float(rng.uniform(1.0, 6.0)),
            cap=CAPACITY,
        )
        for k in range(9)
    }

    sched = AdaptiveScheduler(
        n_servers=SERVERS, capacity=CAPACITY, migration_cost=0.02, n_knots=10
    )
    for tid in truths:
        sched.register(tid)

    print(f"{len(truths)} services with hidden utilities, "
          f"{SERVERS} servers x {CAPACITY:g}")
    print(f"\n{'round':>5}  {'true value':>10}  {'migrations':>10}")
    for rnd in range(1, ROUNDS + 1):
        # Measure at current grants (+ a few exploration probes).
        a = sched.assignment()
        for tid, grant in zip(sched.thread_ids, a.allocations):
            f = truths[tid]
            for x in (float(grant), float(rng.uniform(0, CAPACITY))):
                sched.observe(tid, x, float(f.value(x)) + float(rng.normal(0, NOISE)))
        report = sched.replan_from_measurements()
        print(f"{rnd:>5}  {true_value(truths, sched):>10.3f}  {report.migrations:>10}")

    # Compare the learned plan against planning with the hidden truth.
    from repro.core.problem import AAProblem
    from repro.core.solve import solve

    ids = sched.thread_ids
    oracle = solve(AAProblem([truths[t] for t in ids], SERVERS, CAPACITY))
    learned = true_value(truths, sched)
    print(f"\nlearned plan true value : {learned:.3f}")
    print(f"oracle (true utilities) : {oracle.total_utility:.3f}")
    print(f"learning efficiency     : {learned / oracle.total_utility:.1%}")


if __name__ == "__main__":
    main()
