#!/usr/bin/env python3
"""3-shard fleet smoke run (also the CI fleet job).

Drives a :class:`~repro.service.FleetCoordinator` over three in-process
:class:`~repro.service.AllocationService` shards through the fleet
lifecycle: a burst of arrivals routed across shards (one coalesced fleet
step), a deliberately skewed workload that makes one cross-shard
rebalance fire and *strictly increase* total utility within the
migration budget, a fleet-wide certified ratio that stays ≥ α after
every step (checked via the composed certificate and the fleet
GapMonitor), and an ``aart-fleet-snapshot/1`` save + restore that must
reproduce the whole fleet bit-identically.  Exits non-zero on any
violated invariant.

Run:  PYTHONPATH=src python examples/fleet_smoke.py
"""

import json
import sys

from repro.core.problem import ALPHA
from repro.observability import FLEET_MIGRATIONS, FLEET_STEPS
from repro.service import (
    AllocationService,
    ClusterState,
    FleetCoordinator,
    FleetPolicy,
    QueryAssignment,
    Rebalance,
    RemoveThread,
    ShardRouter,
    SubmitThread,
    fleet_snapshot_from_dict,
    fleet_snapshot_to_dict,
)
from repro.utility.functions import LogUtility, SaturatingUtility

N_SHARDS = 3
N_SERVERS = 2  # per shard
CAPACITY = 50.0
MIGRATION_BUDGET = 4


def main() -> int:
    # Pin the first 9 threads onto shard 0 so the fleet starts skewed and
    # the cross-shard rebalance has real work to do.
    router = ShardRouter(N_SHARDS, pins={f"log{k}": 0 for k in range(9)})
    fleet = FleetCoordinator(
        [
            AllocationService(ClusterState(N_SERVERS, CAPACITY))
            for _ in range(N_SHARDS)
        ],
        router=router,
        policy=FleetPolicy(
            rebalance_interval=None,
            imbalance_threshold=None,
            migration_budget=MIGRATION_BUDGET,
        ),
    )

    # One burst of 12 arrivals must coalesce into ONE fleet step, routed
    # per the router (9 pinned to shard 0, 3 hashed).
    arrivals = [
        SubmitThread(f"log{k}", LogUtility(1.0 + k, 2.0, CAPACITY)) for k in range(9)
    ] + [
        SubmitThread(f"sat{k}", SaturatingUtility(2.0 + k, 10.0, CAPACITY))
        for k in range(3)
    ]
    responses = fleet.process(arrivals)
    assert all(r.ok for r in responses), [r.error for r in responses]
    assert fleet.counters.snapshot()[FLEET_STEPS] == 1, "burst did not coalesce"
    for k in range(9):
        assert fleet.locate(f"log{k}") == 0, "pin was not honored"

    # Churn a little; every step must keep the composed certificate ≥ α.
    fleet.process([RemoveThread("log0"), RemoveThread("sat2")])

    # One forced cross-shard rebalance must fire, migrate within budget,
    # and STRICTLY increase total fleet utility (the fleet was skewed).
    before = fleet.certificate().utility
    report = fleet.handle(Rebalance()).data
    moved = report["migrations"]
    assert 0 < moved <= MIGRATION_BUDGET, f"migrations {moved} out of budget"
    after = fleet.certificate().utility
    assert after > before, f"rebalance did not improve utility ({before} → {after})"
    assert fleet.counters.snapshot()[FLEET_MIGRATIONS] == moved

    # Fleet-wide certification: the composed certificate holds α now, and
    # the fleet GapMonitor saw NO breach on any step so far.
    status = fleet.process([QueryAssignment()])[0].data
    cert = status["certificate"]
    assert cert["complete"] and cert["holds_alpha"], cert
    ratio = status["last_ratio"]
    assert ratio >= ALPHA - 1e-9, f"fleet ratio {ratio:.4f} below α={ALPHA:.4f}"
    gap = fleet.gap.stats()
    assert gap["ok"] and gap["breaches"] == 0, gap
    assert gap["min_ratio"] >= ALPHA - 1e-9, gap

    # Fleet snapshot + restore must reproduce every shard bit-identically.
    doc = fleet_snapshot_to_dict(fleet)
    warm = fleet_snapshot_from_dict(doc)
    assert json.dumps(fleet_snapshot_to_dict(warm), sort_keys=True) == json.dumps(
        doc, sort_keys=True
    ), "fleet snapshot round trip drifted"

    # The restored fleet keeps serving, and re-certifies at α after its
    # first full pass (freshly restored shards are uncertified until they
    # re-solve, exactly like a single warm-restarted service).
    resp = warm.handle(SubmitThread("late", LogUtility(3.0, 2.0, CAPACITY)))
    assert resp.ok, resp.error
    assert warm.handle(Rebalance()).ok
    assert warm.certificate().holds(), "restored fleet lost certification"

    print(
        f"fleet smoke OK: {status['n_threads']} threads on {N_SHARDS} shards "
        f"({status['n_servers']} servers), rebalance moved {moved} "
        f"(≤ budget {MIGRATION_BUDGET}) for +{after - before:.4f} utility, "
        f"fleet ratio {ratio:.4f} ≥ α={ALPHA:.4f} on all {gap['steps']} "
        f"certified steps, snapshot round trip bit-identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
