#!/usr/bin/env python3
"""Cloud VM placement and sizing for revenue (the paper's third motivation).

A provider with four 64-unit machines receives thirty VM requests whose
willingness-to-pay curves differ by workload tier (batch / web /
analytics).  The provider *jointly* decides which machine hosts each VM
and how large to make it.  Requests that earn too little are admitted at
size zero — effectively rejected — which is exactly what revenue
maximization with concave payment curves prescribes.

Run:  python examples/cloud_provider.py
"""

from collections import Counter

from repro.simulate.cloud import CloudProvider, random_portfolio

MACHINES = 4
CAPACITY = 64.0  # resource units per machine
REQUESTS = 30


def main() -> None:
    requests = random_portfolio(REQUESTS, capacity=CAPACITY, seed=20260706)
    provider = CloudProvider(n_machines=MACHINES, capacity=CAPACITY)

    tiers = Counter(r.tier for r in requests)
    print(f"portfolio: {REQUESTS} requests — " + ", ".join(f"{t}: {c}" for t, c in sorted(tiers.items())))

    plans = provider.compare_methods(requests, seed=1)
    ours = plans["alg2"]

    print(f"\nalg2 revenue: {ours.revenue:.2f} "
          f"(certified >= {ours.certified_ratio:.1%} of any possible plan)")
    print(f"rejected requests: {len(ours.rejected)} of {REQUESTS}")

    print("\nper-machine provisioning (alg2):")
    for m in range(MACHINES):
        rows = [
            (r.name, r.tier, float(s))
            for r, mach, s in zip(requests, ours.machines, ours.sizes)
            if mach == m and s > 1e-6
        ]
        used = sum(s for _, _, s in rows)
        print(f"  machine {m} ({used:5.1f}/{CAPACITY:g} used):")
        for name, tier, size in sorted(rows, key=lambda r: -r[2]):
            print(f"    {name} [{tier:<9}] size {size:5.1f}")

    print("\nrevenue comparison:")
    for method, plan in plans.items():
        marker = " <- ours" if method == "alg2" else ""
        print(f"  {method:>4}: {plan.revenue:8.2f}  "
              f"({ours.revenue / plan.revenue:.2f}x){marker}")


if __name__ == "__main__":
    main()
