#!/usr/bin/env python3
"""Utility maximization vs max-min fairness on the same instances.

The paper maximizes *total* utility, which will starve a weak tenant
whenever a strong one uses the resource better.  This example quantifies
the trade-off: for workloads of increasing dispersion, it reports total
utility and the worst-off thread's utility under both objectives.

Run:  python examples/fairness_tradeoff.py
"""

import numpy as np

from repro.core.problem import AAProblem
from repro.extensions.fairness import fairness_report
from repro.utility import LogUtility

SERVERS = 2
CAPACITY = 20.0


def make_instance(spread: float, n: int = 8, seed: int = 0) -> AAProblem:
    """Log utilities with coefficient dispersion controlled by ``spread``."""
    rng = np.random.default_rng(seed)
    coeffs = np.exp(rng.normal(0.0, spread, n))
    fns = [LogUtility(float(c), 2.0, CAPACITY) for c in coeffs]
    return AAProblem(fns, SERVERS, CAPACITY)


def main() -> None:
    print(f"{'spread':>7}  {'util total':>10}  {'fair total':>10}  "
          f"{'util floor':>10}  {'fair floor':>10}  {'cost':>6}")
    for spread in (0.0, 0.5, 1.0, 1.5, 2.0):
        rep = fairness_report(make_instance(spread))
        print(
            f"{spread:>7.1f}  {rep.utilitarian_total:>10.3f}  "
            f"{rep.fair_total:>10.3f}  {rep.utilitarian_min:>10.3f}  "
            f"{rep.fair_min:>10.3f}  {rep.efficiency_cost:>6.1%}"
        )
    print(
        "\nReading: as dispersion grows, utility maximization leaves the"
        "\nweakest thread further behind; max-min fairness lifts the floor"
        "\nat a measurable total-utility cost."
    )


if __name__ == "__main__":
    main()
