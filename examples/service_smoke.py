#!/usr/bin/env python3
"""Allocation-service smoke run (also the CI service job).

Drives an :class:`~repro.service.AllocationService` over the in-process
transport through a full daemon lifecycle: a burst of arrivals (one
coalesced step), churn with departures, an explicit rebalance, the
certification check against the super-optimal bound, and a snapshot +
restore that must reproduce the cluster state bit-identically.  Exits
non-zero on any violated invariant.

Run:  PYTHONPATH=src python examples/service_smoke.py
"""

import sys

from repro.core.problem import ALPHA
from repro.observability import SERVICE_ARRIVALS, SERVICE_STEPS
from repro.service import (
    AllocationService,
    ClusterState,
    InProcessTransport,
    QueryAssignment,
    Rebalance,
    RemoveThread,
    Snapshot,
    SubmitThread,
)
from repro.utility.functions import LogUtility, SaturatingUtility

N_SERVERS = 3
CAPACITY = 100.0


def main() -> int:
    service = AllocationService(ClusterState(N_SERVERS, CAPACITY))
    bus = InProcessTransport(service)

    # One burst of 9 mixed-utility arrivals must coalesce into ONE step.
    arrivals = [
        SubmitThread(f"log{k}", LogUtility(1.0 + k, 2.0, CAPACITY)) for k in range(5)
    ] + [
        SubmitThread(f"sat{k}", SaturatingUtility(2.0 + k, 10.0, CAPACITY))
        for k in range(4)
    ]
    responses = bus.request(*arrivals)
    assert all(r.ok for r in responses), [r.error for r in responses]
    assert service.counters[SERVICE_STEPS] == 1, "burst did not coalesce"
    assert service.counters[SERVICE_ARRIVALS] == 9

    # Churn: drop two threads, then force a full re-solve.
    responses = bus.request(RemoveThread("log0"), RemoveThread("sat3"), Rebalance())
    assert all(r.ok for r in responses), [r.error for r in responses]

    # The daemon must certify at the paper's worst-case guarantee.
    status = bus.request(QueryAssignment())[0].data
    ratio = status["last_ratio"]
    assert ratio >= ALPHA - 1e-9, f"certified ratio {ratio:.4f} below α={ALPHA:.4f}"

    # Snapshot + restore must reproduce the state bit-identically.
    snap = bus.request(Snapshot())[0]
    restored = ClusterState.from_dict(snap.data["state"])
    assert restored.to_dict() == service.state.to_dict(), "snapshot round trip drifted"

    # The restored daemon keeps serving.
    svc2 = AllocationService(restored)
    resp = InProcessTransport(svc2).request(
        SubmitThread("late", LogUtility(3.0, 2.0, CAPACITY))
    )[0]
    assert resp.ok, resp.error

    print(
        f"service smoke OK: {status['n_threads']} threads on {N_SERVERS} servers, "
        f"utility {status['total_utility']:.4f} = {ratio:.4f} × bound "
        f"(α = {ALPHA:.4f}), snapshot round trip bit-identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
