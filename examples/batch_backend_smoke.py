#!/usr/bin/env python3
"""Array-first backend smoke run (also the CI batch job).

Drives one Section VII sweep point through both execution paths of the
experiment harness and verifies the oracle-equivalence contract from the
outside:

* ``backend="batch"`` and ``backend="scalar"`` produce the **same utility
  matrix, bit for bit** (``rtol=0`` — the batch backend is a pure
  throughput decision);
* engine counters agree after removing the batch path's routing counters
  (``batch_trials`` / ``batch_fallbacks``);
* the α-certificate holds on the batch path: every trial's reclaimed
  ALG2 utility is at least ``2(√2−1)`` times its super-optimal bound;
* a pchip (``GenericBatch``) point falls back to the scalar loop under
  ``backend="auto"`` and still matches a forced-scalar run;
* the one-trial ``algorithm2_batch`` registry solver reproduces scalar
  ``alg2`` exactly through the ``solve()`` facade.

Exits non-zero on any violated invariant.

Run:  PYTHONPATH=src python examples/batch_backend_smoke.py
"""

import sys

import numpy as np

from repro.core.problem import ALPHA
from repro.core.solve import solve
from repro.engine import LinearizationCache, SolveContext
from repro.experiments.harness import run_point_arrays
from repro.workloads.generators import UniformDistribution, make_problem

POINT = dict(dist=UniformDistribution(), n_servers=8, beta=6.0,
             capacity=1000.0, trials=50, seed=7)
ROUTING = ("batch_trials", "batch_fallbacks")


def fail(msg: str) -> None:
    print(f"FAIL: {msg}")
    sys.exit(1)


def main() -> None:
    ctx_s = SolveContext(cache=LinearizationCache())
    names_s, utils_s = run_point_arrays(**POINT, ctx=ctx_s, backend="scalar")
    ctx_b = SolveContext(cache=LinearizationCache())
    names_b, utils_b = run_point_arrays(**POINT, ctx=ctx_b, backend="batch")

    if names_s != names_b:
        fail(f"contender sets diverged: {names_s} vs {names_b}")
    if not np.array_equal(utils_s, utils_b):
        worst = float(np.max(np.abs(utils_s - utils_b)))
        fail(f"utility matrices differ (max abs diff {worst:.3e})")
    print(f"bit-identical across backends: {utils_b.shape[0]} trials x "
          f"{utils_b.shape[1]} contenders")

    snap_s = {k: v for k, v in ctx_s.counters.snapshot().items() if k not in ROUTING}
    snap_b = {k: v for k, v in ctx_b.counters.snapshot().items() if k not in ROUTING}
    if snap_s != snap_b:
        fail(f"counters diverged: {snap_s} vs {snap_b}")
    if ctx_b.counters.snapshot().get("batch_trials") != POINT["trials"]:
        fail("batch backend did not record one batch_trials per trial")
    print(f"per-trial-equivalent counters OK ({len(snap_b)} counters)")

    so = utils_b[:, names_b.index("SO")]
    alg2 = utils_b[:, names_b.index("ALG2")]
    if not np.all(alg2 >= ALPHA * so * (1.0 - 1e-12)):
        fail("alpha certificate violated on the batch path")
    print(f"alpha certificate OK (worst ratio {float(np.min(alg2 / so)):.4f} "
          f">= {ALPHA:.4f})")

    # pchip (GenericBatch) solves at scalar-Python speed; a small trial
    # count keeps the fallback check snappy.
    pchip_point = {**POINT, "trials": 8, "beta": 3.0}
    ctx_p = SolveContext()
    names_p, utils_p = run_point_arrays(**pchip_point, interpolator="pchip",
                                        ctx=ctx_p, backend="auto")
    names_ps, utils_ps = run_point_arrays(**pchip_point, interpolator="pchip",
                                          backend="scalar")
    if ctx_p.counters.snapshot().get("batch_fallbacks") != pchip_point["trials"]:
        fail("pchip point did not fall back to the scalar loop")
    if not np.array_equal(utils_p, utils_ps):
        fail("pchip fallback diverged from forced-scalar run")
    print("pchip fallback OK (auto routed every trial to the scalar loop)")

    problem = make_problem(UniformDistribution(), 6, 4.0, seed=11)
    a = solve(problem, algorithm="alg2")
    b = solve(problem, algorithm="algorithm2_batch")
    if not np.array_equal(a.assignment.servers, b.assignment.servers):
        fail("algorithm2_batch placed threads differently from alg2")
    if not np.array_equal(a.assignment.allocations, b.assignment.allocations):
        fail("algorithm2_batch allocated differently from alg2")
    print("registry solver algorithm2_batch == alg2 through solve()")

    print("batch backend smoke OK")


if __name__ == "__main__":
    main()
