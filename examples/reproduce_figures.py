#!/usr/bin/env python3
"""Regenerate any (or all) of the paper's figure panels from the CLI.

Prints the same ratio series the paper plots (Figures 1-3) and reports
whether the paper's qualitative shape claims hold at the chosen trial
count.

Run:  python examples/reproduce_figures.py --figure fig2a --trials 100
      python examples/reproduce_figures.py --all --trials 50
"""

import argparse
import sys
import time

from repro.experiments import (
    FIGURES,
    expected_shape_violations,
    run_figure,
    series_table,
    summarize_headlines,
)


def run_one(figure_id: str, trials: int, seed: int, include_alg1: bool):
    spec = FIGURES[figure_id]
    print(f"\n=== {figure_id}: {spec.title} ===")
    if spec.notes:
        print(f"paper: {spec.notes}")
    t0 = time.perf_counter()
    points = run_figure(
        figure_id, trials=trials, seed=seed, include_alg1=include_alg1
    )
    elapsed = time.perf_counter() - t0
    print(series_table(points, x_label=spec.x_label))
    print(f"({elapsed:.1f}s)")
    violations = expected_shape_violations(figure_id, points)
    if violations:
        print("SHAPE WARNINGS:")
        for v in violations:
            print(f"  - {v}")
    else:
        print("shape: all of the paper's qualitative claims hold")
    return points


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--figure", choices=sorted(FIGURES), help="one panel id")
    parser.add_argument("--all", action="store_true", help="run every panel")
    parser.add_argument("--trials", type=int, default=100,
                        help="trials per sweep point (paper: 1000)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--alg1", action="store_true",
                        help="also run the slower Algorithm 1")
    args = parser.parse_args(argv)

    if not args.figure and not args.all:
        parser.error("pass --figure <id> or --all")

    figure_ids = sorted(FIGURES) if args.all else [args.figure]
    panels = {}
    for fid in figure_ids:
        panels[fid] = run_one(fid, args.trials, args.seed, args.alg1)

    if len(panels) > 1:
        print("\n=== headline summary ===")
        print(summarize_headlines(panels))
    return 0


if __name__ == "__main__":
    sys.exit(main())
